// Package tsdb persists per-series time-series state in a sharded,
// segment-based write-ahead log of length-delimited binary records.
//
// Series are hashed across a fixed set of shard directories; each shard owns
// a sequence of append-only segment files and a single appender goroutine
// that batches concurrent writes into group-commit frames — one
// varint-framed, CRC32-C-protected frame per write+fsync, carrying interned
// series IDs (a per-shard name dictionary) and XOR-compressed point
// payloads. The design goals, in order:
//
//   - Durability with attribution: an append acknowledged to the caller has
//     been fsynced; a torn tail from a crash loses only unacknowledged
//     writes; a flipped byte fails the frame CRC and quarantines exactly the
//     series the frame names, never its shard neighbours.
//   - Million-series scale: a handful of open files per shard, not one per
//     series; a per-series extent index built by one sequential scan at Open
//     so Load reads only its own frames; group commit amortizes fsync across
//     every series that wrote in the window.
//   - Cheap bytes: interned IDs instead of names, Gorilla-style XOR float
//     compression chained across frames, and shared frame overhead per
//     commit batch put steady-state WAL cost at a few bytes per point,
//     versus ~40+ for the JSON-lines format this replaced.
//
// Logs written by the legacy one-file-per-series JSON-lines format are still
// readable: Open discovers them, Load falls back to the legacy reader, and
// the first write to a legacy series imports it into segments (see
// legacy.go). Quarantine keeps its old rename-aside behaviour for legacy
// files; segment-resident series are retired with a durable tombstone record
// instead, which keeps the damaged frames inspectable (`opprenticectl wal
// cat`) while freeing the name. Segment rotation caps file size, and
// compaction deletes only sealed segments holding exclusively tombstoned
// state — retention never drops anything a replay could still need.
package tsdb

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrCorrupt is wrapped by errors caused by a damaged log (checksum
// mismatch, malformed or semantically invalid records) as opposed to I/O
// errors. Callers can errors.Is for it to decide on quarantine.
var ErrCorrupt = errors.New("corrupt WAL")

// Meta describes a series at creation time. The JSON tags are retained for
// the legacy log format.
type Meta struct {
	Name            string    `json:"name"`
	Start           time.Time `json:"start"`
	IntervalSeconds int       `json:"interval_seconds"`
	Recall          float64   `json:"recall"`
	Precision       float64   `json:"precision"`
	Trees           int       `json:"trees"`
	WebhookURL      string    `json:"webhook_url,omitempty"`
	RetrainEvery    int       `json:"retrain_every,omitempty"`
	// Predictor and EVTQ carry the series' cThld-predictor configuration
	// (core.PredictorKind wire code; 0 = EWMA). A series with non-default
	// values writes an opMetaV2 record; zero-valued config keeps the
	// original opMeta byte stream so old logs and new default-config logs
	// stay bit-identical.
	Predictor uint8   `json:"predictor,omitempty"`
	EVTQ      float64 `json:"evt_q,omitempty"`
}

// Loaded is a series reconstructed from its log.
type Loaded struct {
	Meta   Meta
	Values []float64
	Labels []bool
	// Types carries the per-point anomaly class (core.AnomalyClass wire
	// codes; 0 = none/untyped). It is nil when the log holds no typed label
	// record — legacy logs and series labeled without a type — and otherwise
	// runs parallel to Labels.
	Types []uint8
}

// Option configures Open.
type Option func(*options)

type options struct {
	shards       int
	segmentBytes int64
	groupCommit  time.Duration
}

// WithShards sets the shard count for a fresh data directory (default 8).
// Reopening an existing directory always uses the shard count found on
// disk; the option is then ignored.
func WithShards(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.shards = n
		}
	}
}

// WithSegmentBytes sets the segment rotation threshold (default 64 MiB).
func WithSegmentBytes(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.segmentBytes = n
		}
	}
}

// WithGroupCommit sets the group-commit accumulation window. Zero (the
// default) commits whatever is queued the moment the appender is free; a
// positive window holds each batch open that long, trading single-writer
// latency for fewer, larger fsyncs under concurrency.
func WithGroupCommit(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.groupCommit = d
		}
	}
}

// Store is a sharded segment store rooted at one directory. All methods are
// safe for concurrent use.
type Store struct {
	dir    string
	opts   options
	shards []*shard

	// opMu is the close barrier: mutating ops hold it for read while
	// enqueueing to an appender, Close takes it for write so no enqueue can
	// race the appender shutdown.
	opMu   sync.RWMutex
	closed bool

	// migrateMu serializes legacy-log imports (first write to a legacy
	// series); see legacy.go.
	migrateMu sync.Mutex
}

// extent locates one frame referencing a series: segment sequence number,
// byte offset of the frame's length varint, and total frame size.
type extent struct {
	seq  uint64
	off  int64
	size int64
}

// series is the in-memory index entry of one interned series.
type series struct {
	id      uint64
	name    string
	extents []extent
	corrupt bool

	// chain is the XOR encoder state after the last committed point;
	// chainReady is false after a reopen until the appender (or a full Load)
	// replays the series once.
	chain      xorChain
	chainReady bool
}

// segState tracks one segment file for rotation and compaction. liveRefs
// counts distinct live-series references per frame plus pending tombstone
// holds; a sealed segment at zero holds only retired state and may be
// deleted.
type segState struct {
	seq      uint64
	size     int64
	liveRefs int
}

// deadRecord defers deletion of a tombstone's segment until every older
// segment holding the retired series' data is gone — deleting the tombstone
// first could resurrect the series after a crash between the two removals.
type deadRecord struct {
	id      uint64
	segs    map[uint64]bool // segments (≠ tombSeq) still holding its frames
	tombSeq uint64
}

type shard struct {
	store *Store
	id    int
	dir   string

	mu       sync.Mutex
	byName   map[string]*series
	byID     map[uint64]*series
	nextID   uint64 // last assigned ID
	segs     []*segState
	dead     []*deadRecord
	poisoned bool  // structural corruption: every indexed series is unreadable
	failed   error // sticky write failure

	// Committed tail of the newest segment. The appender truncates to
	// activeSize before its first write when torn is set (Open never mutates
	// the directory, so read-only probes stay safe on a live store), and
	// seals the segment first when rotateFirst is set (corruption
	// mid-segment must stay on disk, inspectable, not be overwritten).
	activeSeq   uint64
	activeSize  int64
	torn        bool
	rotateFirst bool

	reqs chan *request
	quit chan struct{}
	wg   sync.WaitGroup

	// Appender-owned; nil until the first write after Open.
	active *os.File
}

// Open opens (or initializes) the store rooted at dir. Opening is read-only
// apart from creating missing directories: a second Store may safely probe
// a directory another Store is writing.
func Open(dir string, opt ...Option) (*Store, error) {
	o := options{shards: 8, segmentBytes: 64 << 20}
	for _, fn := range opt {
		fn(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	existing := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			existing++
		}
	}
	n := o.shards
	if existing > 0 {
		n = existing // the on-disk layout wins over the option
	}
	s := &Store{dir: dir, opts: o}
	for i := 0; i < n; i++ {
		sh := &shard{
			store:  s,
			id:     i,
			dir:    filepath.Join(dir, shardDirName(i)),
			byName: make(map[string]*series),
			byID:   make(map[uint64]*series),
			reqs:   make(chan *request, 1024),
			quit:   make(chan struct{}),
		}
		if err := sh.scan(); err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		sh.wg.Add(1)
		go sh.run()
	}
	return s, nil
}

func shardDirName(i int) string { return fmt.Sprintf("shard-%03d", i) }

func segFileName(seq uint64) string { return fmt.Sprintf("%08d.seg", seq) }

// shardFor hashes a series name onto its owning shard.
func (s *Store) shardFor(name string) *shard {
	return s.shards[shardIndex(name, len(s.shards))]
}

func shardIndex(name string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// validName rejects names that could escape the data directory or collide
// with the store's own file layout.
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("tsdb: invalid series name %q", name)
	}
	return nil
}

// CreateSeries durably registers a new series. The name must be unused; a
// tombstoned name may be reused.
func (s *Store) CreateSeries(meta Meta) error {
	if meta.Name == "" {
		return errors.New("tsdb: meta needs a name")
	}
	if err := validName(meta.Name); err != nil {
		return err
	}
	if err := s.migrateLegacy(meta.Name); err != nil {
		return err
	}
	return s.send(context.Background(), &request{op: reqCreate, name: meta.Name, meta: meta})
}

// AppendPoints durably appends a batch of consecutive point values. It
// returns once the batch's group-commit frame has been fsynced, or once ctx
// is done — cancellation abandons the wait, not the write, which may still
// commit.
func (s *Store) AppendPoints(ctx context.Context, name string, values []float64) error {
	if err := validName(name); err != nil {
		return err
	}
	if len(values) == 0 {
		return nil
	}
	if err := s.migrateLegacy(name); err != nil {
		return err
	}
	// The appender holds the slice until commit; copy so the caller may
	// reuse its buffer immediately.
	vals := make([]float64, len(values))
	copy(vals, values)
	return s.send(ctx, &request{op: reqPoints, name: name, values: vals})
}

// AppendLabel durably records one label action over the half-open range
// [start, end). Context semantics match AppendPoints.
func (s *Store) AppendLabel(ctx context.Context, name string, start, end int, anomalous bool) error {
	if err := validName(name); err != nil {
		return err
	}
	if start < 0 || end <= start {
		return fmt.Errorf("tsdb: invalid label range [%d, %d)", start, end)
	}
	if err := s.migrateLegacy(name); err != nil {
		return err
	}
	return s.send(ctx, &request{op: reqLabel, name: name, start: start, end: end, anomalous: anomalous})
}

// AppendTypedLabel durably records one label action carrying an anomaly
// class over the half-open range [start, end). Context semantics match
// AppendPoints. class uses the core.AnomalyClass wire codes; replay exposes
// it via Loaded.Types.
func (s *Store) AppendTypedLabel(ctx context.Context, name string, start, end int, anomalous bool, class uint8) error {
	if err := validName(name); err != nil {
		return err
	}
	if start < 0 || end <= start {
		return fmt.Errorf("tsdb: invalid label range [%d, %d)", start, end)
	}
	if err := s.migrateLegacy(name); err != nil {
		return err
	}
	return s.send(ctx, &request{op: reqTypedLabel, name: name, start: start, end: end, anomalous: anomalous, class: class})
}

// send enqueues one request on the owning shard's appender and waits for
// the commit ack (or ctx).
func (s *Store) send(ctx context.Context, req *request) error {
	s.opMu.RLock()
	if s.closed {
		s.opMu.RUnlock()
		return errors.New("tsdb: store is closed")
	}
	req.resp = make(chan error, 1)
	s.shardFor(req.name).reqs <- req
	s.opMu.RUnlock()
	select {
	case err := <-req.resp:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Load replays one series and returns its state. Damaged frames (or a
// semantically invalid record sequence) yield an error wrapping ErrCorrupt.
func (s *Store) Load(name string) (*Loaded, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	sh := s.shardFor(name)
	sh.mu.Lock()
	ser := sh.byName[name]
	if ser == nil {
		sh.mu.Unlock()
		return s.legacyLoad(name)
	}
	if ser.corrupt {
		sh.mu.Unlock()
		return nil, fmt.Errorf("tsdb: %s: damaged segment frame (%w)", name, ErrCorrupt)
	}
	extents := append([]extent(nil), ser.extents...)
	warm := ser.chainReady
	sh.mu.Unlock()

	loaded, chain, err := sh.replay(name, ser.id, extents)
	if err != nil {
		return nil, err
	}
	if !warm {
		// The replay just reproduced the encoder chain; hand it to the
		// appender so its first post-reopen write skips the rebuild. Skip if
		// anything advanced the series meanwhile.
		sh.mu.Lock()
		if !ser.chainReady && len(ser.extents) == len(extents) {
			ser.chain = chain
			ser.chainReady = true
		}
		sh.mu.Unlock()
	}
	return loaded, nil
}

// replay reads the extents of one series and rebuilds its state, returning
// the final XOR chain alongside.
func (sh *shard) replay(name string, id uint64, extents []extent) (*Loaded, xorChain, error) {
	var (
		loaded   Loaded
		chain    xorChain
		haveMeta bool
	)
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("tsdb: %s: %s (%w)", name, fmt.Sprintf(format, args...), ErrCorrupt)
	}
	err := sh.readExtents(extents, func(body []byte) error {
		return parseSubs(body[1:len(body)-4], func(sub *subRecord) error {
			if sub.id != id {
				return nil // group-commit frame shared with other series
			}
			switch sub.op {
			case opSeries:
				// The interning record; nothing to replay.
			case opMeta, opMetaV2:
				if haveMeta {
					return corrupt("duplicate meta")
				}
				haveMeta = true
				loaded.Meta = sub.meta
				loaded.Meta.Name = name
			case opPoints:
				if !haveMeta {
					return corrupt("points before meta")
				}
				var err error
				loaded.Values, err = decodePoints(sub, &chain, loaded.Values)
				if err != nil {
					return err
				}
				for len(loaded.Labels) < len(loaded.Values) {
					loaded.Labels = append(loaded.Labels, false)
				}
				for loaded.Types != nil && len(loaded.Types) < len(loaded.Values) {
					loaded.Types = append(loaded.Types, 0)
				}
			case opLabel, opTypedLabel:
				if !haveMeta {
					return corrupt("label before meta")
				}
				if sub.end > len(loaded.Labels) {
					return corrupt("label [%d, %d) beyond %d points", sub.start, sub.end, len(loaded.Labels))
				}
				if sub.op == opTypedLabel && loaded.Types == nil {
					loaded.Types = make([]uint8, len(loaded.Labels))
				}
				class := uint8(0)
				if sub.anomalous && sub.op == opTypedLabel {
					class = sub.class
				}
				for i := sub.start; i < sub.end; i++ {
					loaded.Labels[i] = sub.anomalous
					if loaded.Types != nil {
						// A plain label over a typed range clears the class:
						// the channels never disagree about anomalousness.
						loaded.Types[i] = class
					}
				}
			case opTombstone:
				// Unreachable for a live binding; ignore.
			}
			return nil
		})
	})
	if err != nil {
		return nil, chain, err
	}
	if !haveMeta {
		return nil, chain, corrupt("log has no meta record")
	}
	return &loaded, chain, nil
}

// readExtents streams the frames named by extents (in order), re-verifying
// each frame's CRC, and hands each full body (kind byte through CRC) to fn.
// Extents are grouped by segment so each file is opened once.
func (sh *shard) readExtents(extents []extent, fn func(body []byte) error) error {
	var (
		f   *os.File
		seq uint64
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for _, ext := range extents {
		if f == nil || ext.seq != seq {
			if f != nil {
				f.Close()
			}
			var err error
			f, err = os.Open(filepath.Join(sh.dir, segFileName(ext.seq)))
			if err != nil {
				return fmt.Errorf("tsdb: %w", err)
			}
			seq = ext.seq
		}
		buf := make([]byte, ext.size)
		if _, err := f.ReadAt(buf, ext.off); err != nil {
			return fmt.Errorf("tsdb: read frame: %w", err)
		}
		body, err := frameBody(buf)
		if err != nil {
			return err
		}
		if err := fn(body); err != nil {
			return err
		}
	}
	return nil
}

// List returns every known series name — segment-resident (including
// corrupt ones, so restore can quarantine them) and legacy JSON-lines logs
// — sorted.
func (s *Store) List() ([]string, error) {
	seen := make(map[string]bool)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for name := range sh.byName {
			seen[name] = true
		}
		sh.mu.Unlock()
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		if name, ok := strings.CutSuffix(e.Name(), legacySuffix); ok && validName(name) == nil {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Quarantine retires a damaged series. A segment-resident series gets a
// durable tombstone: the name becomes reusable, replay drops its state, and
// the damaged frames stay on disk for inspection (wal cat) until compaction
// finds them fully retired. A legacy log keeps the historical behaviour and
// is renamed aside to "<name>.wal.corrupt". The returned string names where
// the evidence lives.
func (s *Store) Quarantine(name string) (string, error) {
	if err := validName(name); err != nil {
		return "", err
	}
	sh := s.shardFor(name)
	sh.mu.Lock()
	_, exists := sh.byName[name]
	sh.mu.Unlock()
	if !exists {
		return s.legacyQuarantine(name)
	}
	if err := s.send(context.Background(), &request{op: reqTombstone, name: name}); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s (tombstoned; frames retained until compaction)", sh.dir), nil
}

// Remove deletes a series (tombstone for segment-resident series, file
// removal for legacy logs). Removing an unknown series is a no-op.
func (s *Store) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	sh := s.shardFor(name)
	sh.mu.Lock()
	_, exists := sh.byName[name]
	sh.mu.Unlock()
	if exists {
		return s.send(context.Background(), &request{op: reqTombstone, name: name})
	}
	if err := os.Remove(s.legacyPath(name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("tsdb: %w", err)
	}
	return nil
}

// Compact deletes sealed segments that hold only tombstoned state. The
// appenders also run this opportunistically after every rotation.
func (s *Store) Compact() error {
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.compactLocked()
		sh.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the appenders (draining already queued writes), flushes, and
// closes every segment handle.
func (s *Store) Close() error {
	s.opMu.Lock()
	if s.closed {
		s.opMu.Unlock()
		return nil
	}
	s.closed = true
	s.opMu.Unlock()
	for _, sh := range s.shards {
		close(sh.quit)
	}
	var first error
	for _, sh := range s.shards {
		sh.wg.Wait()
		sh.mu.Lock()
		if sh.failed != nil && first == nil {
			first = sh.failed
		}
		sh.mu.Unlock()
	}
	return first
}

// compactLocked implements Compact for one shard; the caller holds sh.mu.
// Deletion re-runs to a fixpoint: a tombstone's own segment only becomes
// deletable once every older segment holding the retired series' data is
// gone.
func (sh *shard) compactLocked() error {
	if sh.poisoned {
		// Structural damage: the index may be incomplete, so no segment can
		// be proven fully retired. Keep everything for inspection.
		return nil
	}
	for {
		changed := false
		for i := 0; i < len(sh.segs); i++ {
			sg := sh.segs[i]
			if sg.seq == sh.activeSeq || sg.liveRefs > 0 {
				continue
			}
			if err := os.Remove(filepath.Join(sh.dir, segFileName(sg.seq))); err != nil {
				return fmt.Errorf("tsdb: compact: %w", err)
			}
			sh.segs = append(sh.segs[:i], sh.segs[i+1:]...)
			i--
			changed = true
			// Release tombstone holds whose retired data just disappeared.
			for j := 0; j < len(sh.dead); j++ {
				dr := sh.dead[j]
				if !dr.segs[sg.seq] {
					continue
				}
				delete(dr.segs, sg.seq)
				if len(dr.segs) == 0 {
					sh.segRef(dr.tombSeq, -1)
					sh.dead = append(sh.dead[:j], sh.dead[j+1:]...)
					j--
				}
			}
		}
		if !changed {
			return nil
		}
	}
}

// segRef adjusts the live-reference count of one segment.
func (sh *shard) segRef(seq uint64, delta int) {
	if sg := sh.segState(seq); sg != nil {
		sg.liveRefs += delta
	}
}

func (sh *shard) segState(seq uint64) *segState {
	for _, sg := range sh.segs {
		if sg.seq == seq {
			return sg
		}
	}
	return nil
}

// retireLocked removes a series' live binding after its tombstone committed
// (or was scanned): the data references are released, and the tombstone's
// segment takes one hold per retired series until compaction deletes the
// data segments. The caller holds sh.mu.
func (sh *shard) retireLocked(ser *series, tombSeq uint64) {
	if sh.byName[ser.name] == ser {
		delete(sh.byName, ser.name)
	}
	delete(sh.byID, ser.id)
	segs := make(map[uint64]bool)
	for _, ext := range ser.extents {
		segs[ext.seq] = true
	}
	for seq := range segs {
		sh.segRef(seq, -1)
	}
	delete(segs, tombSeq) // data in the tombstone's own segment dies with it
	if len(segs) > 0 {
		sh.segRef(tombSeq, +1)
		sh.dead = append(sh.dead, &deadRecord{id: ser.id, segs: segs, tombSeq: tombSeq})
	}
}
