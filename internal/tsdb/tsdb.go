// Package tsdb is the service's durable storage: an append-only JSON-lines
// write-ahead log per monitored series, recording creation metadata, point
// batches and label actions. Replaying a log reconstructs the series and its
// labels exactly; classifiers are retrained from them, which is cheap
// (§5.8) and avoids model/state divergence.
//
// The format is deliberately boring: one self-describing JSON object per
// line, so logs can be inspected, grepped, truncated and repaired with
// standard tools. A torn final line (crash mid-write) is detected and
// ignored.
//
// Durability hardening: every line this version writes is prefixed with an
// 8-hex-digit CRC32-C checksum of the JSON payload ("deadbeef {...}"), so
// bit rot and hand-editing mistakes are detected, not replayed. Lines
// without the prefix (logs written by earlier versions) still load. Mid-log
// corruption surfaces as an error wrapping ErrCorrupt, which callers (see
// service.Restore) use to Quarantine the one bad series instead of aborting
// the daemon.
package tsdb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrCorrupt is wrapped by Load errors caused by a damaged log (checksum
// mismatch, malformed or semantically invalid records) as opposed to I/O
// errors. Callers can errors.Is for it to decide on quarantine.
var ErrCorrupt = errors.New("corrupt WAL")

// crcTable is the Castagnoli polynomial, the usual choice for storage CRCs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Meta describes a series at creation time.
type Meta struct {
	Name            string    `json:"name"`
	Start           time.Time `json:"start"`
	IntervalSeconds int       `json:"interval_seconds"`
	Recall          float64   `json:"recall"`
	Precision       float64   `json:"precision"`
	Trees           int       `json:"trees"`
	WebhookURL      string    `json:"webhook_url,omitempty"`
	RetrainEvery    int       `json:"retrain_every,omitempty"`
}

// record is one WAL line.
type record struct {
	Kind      string    `json:"kind"` // "meta" | "points" | "label"
	Meta      *Meta     `json:"meta,omitempty"`
	Values    []float64 `json:"values,omitempty"`
	Start     int       `json:"start,omitempty"`
	End       int       `json:"end,omitempty"`
	Anomalous bool      `json:"anomalous,omitempty"`
}

// Store manages per-series WAL files inside a directory.
type Store struct {
	dir string

	mu    sync.Mutex
	files map[string]*os.File
}

// Open prepares a store rooted at dir, creating it if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	return &Store{dir: dir, files: make(map[string]*os.File)}, nil
}

// Close releases all open log files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.files, name)
	}
	return first
}

// walPath returns the on-disk path for a series name, rejecting names that
// would escape the directory.
func (s *Store) walPath(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return "", fmt.Errorf("tsdb: invalid series name %q", name)
	}
	return filepath.Join(s.dir, name+".wal"), nil
}

// file returns (opening if necessary) the append handle for a series.
func (s *Store) file(name string) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[name]; ok {
		return f, nil
	}
	path, err := s.walPath(name)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	s.files[name] = f
	return f, nil
}

// append writes one checksummed record line: "xxxxxxxx {json}\n" where the
// prefix is the CRC32-C of the JSON payload in fixed-width hex.
func (s *Store) append(name string, r record) error {
	f, err := s.file(name)
	if err != nil {
		return err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, crcTable))
	line = append(line, payload...)
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = f.Write(line)
	return err
}

// CreateSeries records a series' creation metadata. It must be the first
// record of a log.
func (s *Store) CreateSeries(meta Meta) error {
	if meta.Name == "" {
		return errors.New("tsdb: meta needs a name")
	}
	return s.append(meta.Name, record{Kind: "meta", Meta: &meta})
}

// AppendPoints records a batch of consecutive point values.
func (s *Store) AppendPoints(name string, values []float64) error {
	if len(values) == 0 {
		return nil
	}
	return s.append(name, record{Kind: "points", Values: values})
}

// AppendLabel records one label action over the half-open range [start, end).
func (s *Store) AppendLabel(name string, start, end int, anomalous bool) error {
	if start < 0 || end <= start {
		return fmt.Errorf("tsdb: invalid label range [%d, %d)", start, end)
	}
	return s.append(name, record{Kind: "label", Start: start, End: end, Anomalous: anomalous})
}

// Loaded is a series reconstructed from its log.
type Loaded struct {
	Meta   Meta
	Values []float64
	Labels []bool
}

// Load replays one series' log. A torn trailing line (crash mid-write) is
// ignored; any other malformed or checksum-failing record is an error
// wrapping ErrCorrupt.
func (s *Store) Load(name string) (*Loaded, error) {
	path, err := s.walPath(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	defer f.Close()

	var out *Loaded
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		payload, err := verifyLine(line)
		if err != nil {
			// A torn final line is expected after a crash; anything earlier
			// is corruption.
			if isLastLine(sc) {
				break
			}
			return nil, fmt.Errorf("tsdb: %s line %d: %w", name, lineNo, err)
		}
		var r record
		if err := json.Unmarshal(payload, &r); err != nil {
			if isLastLine(sc) {
				break
			}
			return nil, fmt.Errorf("tsdb: %s line %d: %w (%w)", name, lineNo, err, ErrCorrupt)
		}
		switch r.Kind {
		case "meta":
			if out != nil {
				return nil, fmt.Errorf("tsdb: %s line %d: duplicate meta (%w)", name, lineNo, ErrCorrupt)
			}
			if r.Meta == nil {
				return nil, fmt.Errorf("tsdb: %s line %d: empty meta (%w)", name, lineNo, ErrCorrupt)
			}
			out = &Loaded{Meta: *r.Meta}
		case "points":
			if out == nil {
				return nil, fmt.Errorf("tsdb: %s line %d: points before meta (%w)", name, lineNo, ErrCorrupt)
			}
			out.Values = append(out.Values, r.Values...)
			for range r.Values {
				out.Labels = append(out.Labels, false)
			}
		case "label":
			if out == nil {
				return nil, fmt.Errorf("tsdb: %s line %d: label before meta (%w)", name, lineNo, ErrCorrupt)
			}
			if r.End > len(out.Labels) {
				return nil, fmt.Errorf("tsdb: %s line %d: label [%d, %d) beyond %d points (%w)",
					name, lineNo, r.Start, r.End, len(out.Labels), ErrCorrupt)
			}
			for i := r.Start; i < r.End; i++ {
				out.Labels[i] = r.Anomalous
			}
		default:
			return nil, fmt.Errorf("tsdb: %s line %d: unknown record kind %q (%w)", name, lineNo, r.Kind, ErrCorrupt)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: %s: %w", name, err)
	}
	if out == nil {
		return nil, fmt.Errorf("tsdb: %s: log has no meta record (%w)", name, ErrCorrupt)
	}
	return out, nil
}

// verifyLine strips and checks a line's checksum prefix, returning the JSON
// payload. Lines starting with '{' are legacy (pre-checksum) records and are
// accepted as-is for backward compatibility.
func verifyLine(line []byte) ([]byte, error) {
	if line[0] == '{' {
		return line, nil // legacy unchecksummed record
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed checksum prefix (%w)", ErrCorrupt)
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed checksum prefix: %v (%w)", err, ErrCorrupt)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, crcTable); got != uint32(want) {
		return nil, fmt.Errorf("checksum mismatch: recorded %08x, computed %08x (%w)", want, got, ErrCorrupt)
	}
	return payload, nil
}

// isLastLine reports whether the scanner has no further tokens; used to
// distinguish a torn tail from mid-log corruption.
func isLastLine(sc *bufio.Scanner) bool { return !sc.Scan() }

// List returns the names of all stored series.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, strings.TrimSuffix(e.Name(), ".wal"))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Quarantine sets a damaged series' log aside: the append handle is closed
// and the file renamed to "<name>.wal.corrupt" so List no longer returns it,
// the daemon can keep serving every healthy series, and an operator can
// inspect or repair the log offline (it is plain JSON lines). The quarantine
// path is returned. Quarantining a series with no log is an error.
func (s *Store) Quarantine(name string) (string, error) {
	path, err := s.walPath(name)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if f, ok := s.files[name]; ok {
		f.Close()
		delete(s.files, name)
	}
	s.mu.Unlock()
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("tsdb: quarantine %s: %w", name, err)
	}
	return dst, nil
}

// Remove deletes a series' log (for tests and administrative cleanup).
func (s *Store) Remove(name string) error {
	path, err := s.walPath(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if f, ok := s.files[name]; ok {
		f.Close()
		delete(s.files, name)
	}
	s.mu.Unlock()
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("tsdb: %w", err)
	}
	return nil
}
