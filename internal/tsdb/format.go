package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// On-disk format of one segment file (see the package comment in tsdb.go
// for the rationale):
//
//	segment := magic "OPSEG001" | frame*
//	frame   := uvarint(len(body)) | body
//	body    := kind(1B, =frameCommit) | sub* | crc32c(body[:len-4]) LE
//	sub     := op(1B) | uvarint(seriesID) | payload
//
//	opSeries    payload := uvarint(len) | name bytes      (binds name → ID)
//	opMeta      payload := varint(startUnixNano) | uvarint(intervalSecs) |
//	                       recallBits(8B LE) | precisionBits(8B LE) |
//	                       uvarint(trees) | uvarint(retrainEvery) |
//	                       uvarint(len) | webhookURL bytes
//	opPoints    payload := uvarint(count) | uvarint(len) | XOR bitstream of
//	                       len bytes, zero-padded to a byte boundary (the
//	                       XOR chain continues across frames)
//	opLabel     payload := uvarint(start) | uvarint(end) | anomalous(1B)
//	opTombstone payload := (empty; retires the ID — quarantine or removal)
//	opTypedLabel payload := uvarint(start) | uvarint(end) | anomalous(1B) |
//	                       class(1B) (a label action carrying the anomaly
//	                       class; logs written before the op simply never
//	                       contain it, so Loaded.Types stays nil for them)
//	opMetaV2    payload := opMeta payload | predictor(1B) | evtQBits(8B LE)
//	                       (written only for non-default predictor config —
//	                       opMeta's payload is positional, so extension
//	                       needs a new op, and defaulted series keep the
//	                       original byte stream)
//
// One frame carries one group-commit batch: every sub-record the shard
// appender accumulated before a single write+fsync. The CRC covers the kind
// byte and all sub-records, so a torn tail (short frame at the end of the
// newest segment) is distinguishable from corruption (a complete frame whose
// CRC fails): torn tails are forgiven and overwritten by the next append,
// CRC failures quarantine exactly the series named by the damaged frame's
// sub-records.

const (
	segMagic    = "OPSEG001"
	frameCommit = 0x01

	opSeries     = 0x01
	opMeta       = 0x02
	opPoints     = 0x03
	opLabel      = 0x04
	opTombstone  = 0x05
	opTypedLabel = 0x06
	opMetaV2     = 0x07

	// maxFrame bounds a single frame; anything claiming more is structural
	// corruption, not a large batch (the appender splits bigger batches).
	maxFrame = 64 << 20
	// maxName bounds an interned series name.
	maxName = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// uvarint / varint append-and-consume helpers over byte slices. The consume
// side returns n == 0 on malformed or truncated input.

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func takeUvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0
	}
	return v, n
}

func takeVarint(b []byte) (int64, int) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, 0
	}
	return v, n
}

// subRecord is one decoded sub-record of a commit frame.
type subRecord struct {
	op   byte
	id   uint64
	name string // opSeries
	meta Meta   // opMeta (Name left empty; bound via the ID)
	// opPoints: the raw bitstream and its count. Decoding needs the series'
	// chain state, so it happens at replay, not at parse. streamOff is the
	// bitstream's byte offset within the parsed body (for fault injection).
	count     uint64
	stream    []byte
	streamOff int
	// opLabel / opTypedLabel
	start, end int
	anomalous  bool
	class      byte // opTypedLabel
}

// parseSubs decodes the sub-records of a commit-frame body (kind byte and
// CRC already stripped). It is pure structure: per-series semantic checks
// (meta before points, label bounds) happen at replay.
func parseSubs(body []byte, fn func(sub *subRecord) error) error {
	full := body
	var sub subRecord
	for len(body) > 0 {
		op := body[0]
		body = body[1:]
		id, n := takeUvarint(body)
		if n == 0 || id == 0 {
			return fmt.Errorf("%w: bad sub-record series id", ErrCorrupt)
		}
		body = body[n:]
		sub = subRecord{op: op, id: id}
		switch op {
		case opSeries:
			ln, n := takeUvarint(body)
			if n == 0 || ln == 0 || ln > maxName || uint64(len(body)-n) < ln {
				return fmt.Errorf("%w: bad series-name length", ErrCorrupt)
			}
			sub.name = string(body[n : n+int(ln)])
			body = body[n+int(ln):]
		case opMeta, opMetaV2:
			rest, meta, err := parseMeta(body)
			if err != nil {
				return err
			}
			if op == opMetaV2 {
				if len(rest) < 9 {
					return fmt.Errorf("%w: bad meta sub-record", ErrCorrupt)
				}
				meta.Predictor = rest[0]
				meta.EVTQ = math.Float64frombits(binary.LittleEndian.Uint64(rest[1:]))
				rest = rest[9:]
			}
			sub.meta, body = meta, rest
		case opPoints:
			count, n := takeUvarint(body)
			body = body[n:]
			// The stream's byte length is stored explicitly: decoding by
			// count needs the series' chain state, which the structural scan
			// does not have. Each point costs at least one bit, so a count
			// beyond the stream's bit capacity is corruption.
			ln, n2 := takeUvarint(body)
			if n == 0 || n2 == 0 || uint64(len(body)-n2) < ln || count > ln*8 {
				return fmt.Errorf("%w: bad points sub-record", ErrCorrupt)
			}
			sub.count = count
			sub.stream = body[n2 : n2+int(ln)]
			sub.streamOff = len(full) - len(body) + n2
			body = body[n2+int(ln):]
		case opLabel, opTypedLabel:
			tail := 1 // anomalous flag
			if op == opTypedLabel {
				tail = 2 // flag + class
			}
			start, n1 := takeUvarint(body)
			body = body[n1:]
			end, n2 := takeUvarint(body)
			body = body[n2:]
			if n1 == 0 || n2 == 0 || len(body) < tail ||
				start > math.MaxInt32 || end > math.MaxInt32 {
				return fmt.Errorf("%w: bad label sub-record", ErrCorrupt)
			}
			sub.start, sub.end, sub.anomalous = int(start), int(end), body[0] != 0
			if op == opTypedLabel {
				sub.class = body[1]
			}
			body = body[tail:]
		case opTombstone:
			// empty payload
		default:
			return fmt.Errorf("%w: unknown sub-record op %#x", ErrCorrupt, op)
		}
		if err := fn(&sub); err != nil {
			return err
		}
	}
	return nil
}

func appendMeta(b []byte, m Meta) []byte {
	b = binary.AppendVarint(b, m.Start.UnixNano())
	b = appendUvarint(b, uint64(m.IntervalSeconds))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Recall))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(m.Precision))
	b = appendUvarint(b, uint64(m.Trees))
	b = appendUvarint(b, uint64(m.RetrainEvery))
	b = appendUvarint(b, uint64(len(m.WebhookURL)))
	return append(b, m.WebhookURL...)
}

func appendMetaV2(b []byte, m Meta) []byte {
	b = appendMeta(b, m)
	b = append(b, m.Predictor)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(m.EVTQ))
}

func parseMeta(b []byte) (rest []byte, m Meta, err error) {
	bad := func() ([]byte, Meta, error) {
		return nil, Meta{}, fmt.Errorf("%w: bad meta sub-record", ErrCorrupt)
	}
	ns, n := takeVarint(b)
	if n == 0 {
		return bad()
	}
	b = b[n:]
	interval, n := takeUvarint(b)
	if n == 0 || interval > math.MaxInt32 {
		return bad()
	}
	b = b[n:]
	if len(b) < 16 {
		return bad()
	}
	m.Recall = math.Float64frombits(binary.LittleEndian.Uint64(b))
	m.Precision = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	b = b[16:]
	trees, n := takeUvarint(b)
	if n == 0 || trees > math.MaxInt32 {
		return bad()
	}
	b = b[n:]
	retrain, n := takeUvarint(b)
	if n == 0 || retrain > math.MaxInt32 {
		return bad()
	}
	b = b[n:]
	ln, n := takeUvarint(b)
	if n == 0 || ln > maxName || uint64(len(b)-n) < ln {
		return bad()
	}
	m.WebhookURL = string(b[n : n+int(ln)])
	b = b[n+int(ln):]
	m.Start = time.Unix(0, ns).UTC()
	m.IntervalSeconds = int(interval)
	m.Trees = int(trees)
	m.RetrainEvery = int(retrain)
	return b, m, nil
}

// decodePoints replays one points sub-record through the series' chain.
func decodePoints(sub *subRecord, chain *xorChain, out []float64) ([]float64, error) {
	r := bitReader{buf: sub.stream}
	for i := uint64(0); i < sub.count; i++ {
		v, ok := xorRead(&r, chain)
		if !ok {
			return out, fmt.Errorf("%w: points bitstream truncated", ErrCorrupt)
		}
		out = append(out, v)
	}
	return out, nil
}
