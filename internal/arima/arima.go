// Package arima fits and forecasts ARIMA(p,d,q) models, the substrate of
// Table 3's ARIMA detector. As the paper prescribes for complex detectors
// (§4.3.3), the parameters are not swept but *estimated from the data*:
// FitAuto searches a small (p,d,q) grid by AIC, with coefficients estimated
// by the Hannan–Rissanen two-stage regression (long-AR residuals, then least
// squares on AR and MA lags). Forecasting is strictly one-step-ahead and
// online: the Forecaster never looks at future data.
package arima

import (
	"errors"
	"fmt"
	"math"

	"opprentice/internal/linalg"
)

// MaxD is the largest supported differencing order.
const MaxD = 2

// Model is a fitted ARIMA(p,d,q) model of the original series x, i.e. an
// ARMA(p,q) model w_t = C + Σφ_i w_{t-i} + e_t + Σθ_j e_{t-j} of the d-times
// differenced series w.
type Model struct {
	P, D, Q int
	C       float64
	Phi     []float64 // AR coefficients, Phi[i] multiplies w_{t-1-i}
	Theta   []float64 // MA coefficients, Theta[j] multiplies e_{t-1-j}
	Sigma2  float64   // innovation variance estimate
	AIC     float64
}

// String summarizes the model order.
func (m *Model) String() string {
	return fmt.Sprintf("ARIMA(%d,%d,%d)", m.P, m.D, m.Q)
}

// Difference applies d-th order differencing and returns the series of
// length len(xs)-d.
func Difference(xs []float64, d int) []float64 {
	w := append([]float64(nil), xs...)
	for k := 0; k < d; k++ {
		for i := len(w) - 1; i >= 1; i-- {
			w[i] -= w[i-1]
		}
		w = w[1:]
	}
	return w
}

// ols solves the least-squares regression y ~ X·β with a tiny ridge term for
// numerical stability, returning β.
func ols(x *linalg.Matrix, y []float64) ([]float64, error) {
	n, k := x.Rows, x.Cols
	if n < k {
		return nil, fmt.Errorf("arima: %d observations for %d parameters", n, k)
	}
	xtx := linalg.NewMatrix(k, k)
	xty := make([]float64, k)
	for i := 0; i < n; i++ {
		for a := 0; a < k; a++ {
			xia := x.At(i, a)
			xty[a] += xia * y[i]
			for b := a; b < k; b++ {
				xtx.Set(a, b, xtx.At(a, b)+xia*x.At(i, b))
			}
		}
	}
	for a := 0; a < k; a++ {
		for b := 0; b < a; b++ {
			xtx.Set(a, b, xtx.At(b, a))
		}
		xtx.Set(a, a, xtx.At(a, a)+1e-8)
	}
	return linalg.SolveLinear(xtx, xty)
}

// fitAR fits w_t = c + Σ a_i w_{t-i} + e by OLS and returns (c, a, residuals
// aligned with w[p:]).
func fitAR(w []float64, p int) (c float64, a []float64, resid []float64, err error) {
	n := len(w) - p
	if n < p+2 {
		return 0, nil, nil, fmt.Errorf("arima: %d points too short for AR(%d)", len(w), p)
	}
	x := linalg.NewMatrix(n, p+1)
	y := make([]float64, n)
	for t := 0; t < n; t++ {
		x.Set(t, 0, 1)
		for i := 0; i < p; i++ {
			x.Set(t, i+1, w[p+t-1-i])
		}
		y[t] = w[p+t]
	}
	beta, err := ols(x, y)
	if err != nil {
		return 0, nil, nil, err
	}
	c, a = beta[0], beta[1:]
	resid = make([]float64, n)
	for t := 0; t < n; t++ {
		pred := c
		for i := 0; i < p; i++ {
			pred += a[i] * w[p+t-1-i]
		}
		resid[t] = y[t] - pred
	}
	return c, a, resid, nil
}

// ErrTooShort is returned when the series cannot support the requested
// orders.
var ErrTooShort = errors.New("arima: series too short for requested orders")

// Fit estimates an ARIMA(p,d,q) model from xs by Hannan–Rissanen.
func Fit(xs []float64, p, d, q int) (*Model, error) {
	if p < 0 || q < 0 || d < 0 || d > MaxD {
		return nil, fmt.Errorf("arima: invalid orders (%d,%d,%d)", p, d, q)
	}
	if p == 0 && q == 0 {
		return fitMeanOnly(xs, d)
	}
	w := Difference(xs, d)
	need := 4 * (p + q + 1)
	if len(w) < need+p+q {
		return nil, ErrTooShort
	}
	var ehat []float64
	offset := p // index into w where regression targets start
	if q > 0 {
		// Stage 1: long AR to estimate innovations.
		m := p + q + 5
		if m > len(w)/4 {
			m = len(w) / 4
		}
		if m < 1 {
			return nil, ErrTooShort
		}
		_, _, resid, err := fitAR(w, m)
		if err != nil {
			return nil, err
		}
		// resid[t] corresponds to w[m+t]. Build e aligned with w:
		// e[i] = resid[i-m] for i >= m, 0 before.
		ehat = make([]float64, len(w))
		for t, r := range resid {
			ehat[m+t] = r
		}
		if m > offset {
			offset = m
		}
	}
	if q > offset {
		offset = q
	}
	// Stage 2: regress w_t on its own lags and lagged innovations.
	n := len(w) - offset
	if n < p+q+2 {
		return nil, ErrTooShort
	}
	x := linalg.NewMatrix(n, p+q+1)
	y := make([]float64, n)
	for t := 0; t < n; t++ {
		ti := offset + t
		x.Set(t, 0, 1)
		for i := 0; i < p; i++ {
			x.Set(t, 1+i, w[ti-1-i])
		}
		for j := 0; j < q; j++ {
			x.Set(t, 1+p+j, ehat[ti-1-j])
		}
		y[t] = w[ti]
	}
	beta, err := ols(x, y)
	if err != nil {
		return nil, err
	}
	model := &Model{P: p, D: d, Q: q, C: beta[0]}
	model.Phi = append([]float64(nil), beta[1:1+p]...)
	model.Theta = append([]float64(nil), beta[1+p:]...)

	// Innovation variance and AIC from the in-sample one-step residuals.
	ss := 0.0
	e := make([]float64, len(w))
	for ti := offset; ti < len(w); ti++ {
		pred := model.C
		for i := 0; i < p; i++ {
			pred += model.Phi[i] * w[ti-1-i]
		}
		for j := 0; j < q; j++ {
			pred += model.Theta[j] * e[ti-1-j]
		}
		e[ti] = w[ti] - pred
		ss += e[ti] * e[ti]
	}
	model.Sigma2 = ss / float64(n)
	if model.Sigma2 <= 0 {
		model.Sigma2 = 1e-12
	}
	model.AIC = float64(n)*math.Log(model.Sigma2) + 2*float64(p+q+1)
	return model, nil
}

// fitMeanOnly handles ARIMA(0,d,0): white noise around a constant.
func fitMeanOnly(xs []float64, d int) (*Model, error) {
	w := Difference(xs, d)
	if len(w) < 4 {
		return nil, ErrTooShort
	}
	mean := 0.0
	for _, v := range w {
		mean += v
	}
	mean /= float64(len(w))
	ss := 0.0
	for _, v := range w {
		dv := v - mean
		ss += dv * dv
	}
	sigma2 := ss / float64(len(w))
	if sigma2 <= 0 {
		sigma2 = 1e-12
	}
	return &Model{
		D: d, C: mean, Sigma2: sigma2,
		AIC: float64(len(w))*math.Log(sigma2) + 2,
	}, nil
}

// FitAuto estimates the best ARIMA model: the differencing order d is chosen
// first by the Box–Jenkins variance rule (difference while it keeps shrinking
// the variance; AIC is not comparable across different d), then (p, q) are
// searched over the grid p ≤ maxP, q ≤ maxQ by minimum AIC. This mirrors the
// auto.arima-style order selection the paper cites for its single ARIMA
// configuration.
func FitAuto(xs []float64, maxP, maxD, maxQ int) (*Model, error) {
	if maxD > MaxD {
		maxD = MaxD
	}
	d := selectD(xs, maxD)
	var best *Model
	for p := 0; p <= maxP; p++ {
		for q := 0; q <= maxQ; q++ {
			m, err := Fit(xs, p, d, q)
			if err != nil {
				continue
			}
			if best == nil || m.AIC < best.AIC {
				best = m
			}
		}
	}
	if best == nil {
		return nil, ErrTooShort
	}
	return best, nil
}

// selectD returns the smallest d ≤ maxD after which further differencing no
// longer reduces the sample variance meaningfully.
func selectD(xs []float64, maxD int) int {
	variance := func(w []float64) float64 {
		if len(w) < 2 {
			return 0
		}
		mean := 0.0
		for _, v := range w {
			mean += v
		}
		mean /= float64(len(w))
		ss := 0.0
		for _, v := range w {
			dv := v - mean
			ss += dv * dv
		}
		return ss / float64(len(w))
	}
	d := 0
	cur := variance(xs)
	for d < maxD {
		next := variance(Difference(xs, d+1))
		if next >= 0.9*cur {
			break
		}
		cur = next
		d++
	}
	return d
}
