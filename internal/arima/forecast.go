package arima

// Forecaster streams one-step-ahead forecasts of the original (undifferenced)
// series under a fitted model. On each Step it first forms the forecast for
// the incoming point from past data only, then folds the observation in —
// exactly the online discipline §4.3.2 requires of detectors.
type Forecaster struct {
	m     *Model
	xlags []float64 // most recent raw observations, newest first, len ≤ D
	wlags []float64 // most recent differenced values, newest first, len ≤ P
	elags []float64 // most recent innovations, newest first, len ≤ Q
	seen  int
}

// NewForecaster returns a streaming forecaster for the model.
func NewForecaster(m *Model) *Forecaster {
	return &Forecaster{m: m}
}

// WarmUp returns how many points must be observed before forecasts are
// trustworthy: enough raw lags to difference plus enough differenced lags
// for the AR part.
func (f *Forecaster) WarmUp() int { return f.m.D + f.m.P }

// Step returns the forecast that the model made for x before observing it,
// then updates the internal state with x. ready is false during warm-up
// (the forecast then simply repeats the last observation, or 0 at the very
// first point).
func (f *Forecaster) Step(x float64) (forecast float64, ready bool) {
	ready = f.seen >= f.WarmUp()
	forecast = f.predict()
	f.observe(x, forecast)
	return forecast, ready
}

// predict forms the one-step forecast from current lag state.
func (f *Forecaster) predict() float64 {
	if f.seen == 0 {
		return 0
	}
	// Forecast of the differenced series.
	w := f.m.C
	for i := 0; i < f.m.P; i++ {
		if i < len(f.wlags) {
			w += f.m.Phi[i] * f.wlags[i]
		}
	}
	for j := 0; j < f.m.Q; j++ {
		if j < len(f.elags) {
			w += f.m.Theta[j] * f.elags[j]
		}
	}
	// Undifference: x̂_t = ŵ_t + d-th order extrapolation of raw lags.
	switch f.m.D {
	case 0:
		return w
	case 1:
		return w + f.xlags[0]
	default: // 2
		if len(f.xlags) < 2 {
			return w + f.xlags[0]
		}
		return w + 2*f.xlags[0] - f.xlags[1]
	}
}

// observe folds x (with its pre-computed forecast) into the lag state.
func (f *Forecaster) observe(x, forecast float64) {
	// Differenced value of the new observation.
	var w float64
	switch {
	case f.m.D == 0:
		w = x
	case f.m.D == 1 && len(f.xlags) >= 1:
		w = x - f.xlags[0]
	case f.m.D == 2 && len(f.xlags) >= 2:
		w = x - 2*f.xlags[0] + f.xlags[1]
	default:
		w = 0 // not enough raw lags yet
	}
	// Innovation, only meaningful once warm.
	var e float64
	if f.seen >= f.WarmUp() {
		// Innovation is in differenced units: w - ŵ. Since forecast
		// undifferenced ŵ the same way observe differences x, the raw
		// residual equals the differenced one.
		e = x - forecast
	}
	f.xlags = pushLag(f.xlags, x, f.m.D)
	f.wlags = pushLag(f.wlags, w, f.m.P)
	f.elags = pushLag(f.elags, e, f.m.Q)
	f.seen++
}

// Clone returns an independent forecaster at the same stream position: the
// clone and the original produce bit-identical forecasts for the same future
// inputs. The fitted model is immutable and shared; the lag state is copied.
func (f *Forecaster) Clone() *Forecaster {
	return &Forecaster{
		m:     f.m,
		xlags: append([]float64(nil), f.xlags...),
		wlags: append([]float64(nil), f.wlags...),
		elags: append([]float64(nil), f.elags...),
		seen:  f.seen,
	}
}

// Reset clears the lag state.
func (f *Forecaster) Reset() {
	f.xlags, f.wlags, f.elags = nil, nil, nil
	f.seen = 0
}

// pushLag prepends v keeping at most n entries (newest first).
func pushLag(lags []float64, v float64, n int) []float64 {
	if n == 0 {
		return lags[:0]
	}
	lags = append(lags, 0)
	copy(lags[1:], lags)
	lags[0] = v
	if len(lags) > n {
		lags = lags[:n]
	}
	return lags
}
