package arima

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDifference(t *testing.T) {
	xs := []float64{1, 3, 6, 10}
	d1 := Difference(xs, 1)
	want1 := []float64{2, 3, 4}
	for i := range want1 {
		if d1[i] != want1[i] {
			t.Fatalf("d1 = %v, want %v", d1, want1)
		}
	}
	d2 := Difference(xs, 2)
	want2 := []float64{1, 1}
	for i := range want2 {
		if d2[i] != want2[i] {
			t.Fatalf("d2 = %v, want %v", d2, want2)
		}
	}
	if got := Difference(xs, 0); len(got) != 4 || got[0] != 1 {
		t.Errorf("d0 = %v", got)
	}
	// Input must not be mutated.
	if xs[1] != 3 {
		t.Error("Difference mutated input")
	}
}

func TestFitRejectsBadOrders(t *testing.T) {
	xs := make([]float64, 100)
	if _, err := Fit(xs, -1, 0, 0); err == nil {
		t.Error("negative p should error")
	}
	if _, err := Fit(xs, 0, 3, 0); err == nil {
		t.Error("d > MaxD should error")
	}
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, 2, 0, 2); err == nil {
		t.Error("short series should error")
	}
}

// Generate an AR(1) process and verify Fit recovers phi and forecasts beat a
// naive predictor.
func TestFitRecoversAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const phi = 0.7
	n := 2000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	m, err := Fit(xs, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Phi[0]-phi) > 0.08 {
		t.Errorf("phi = %v, want ≈ %v", m.Phi[0], phi)
	}
	if m.Sigma2 < 0.8 || m.Sigma2 > 1.25 {
		t.Errorf("sigma2 = %v, want ≈ 1", m.Sigma2)
	}
}

func TestFitRecoversMA1(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const theta = 0.6
	n := 4000
	xs := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		e := rng.NormFloat64()
		xs[i] = e + theta*prev
		prev = e
	}
	m, err := Fit(xs, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Theta[0]-theta) > 0.12 {
		t.Errorf("theta = %v, want ≈ %v", m.Theta[0], theta)
	}
}

func TestFitMeanOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	m, err := Fit(xs, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.C-5) > 0.2 {
		t.Errorf("C = %v, want ≈ 5", m.C)
	}
}

func TestFitAutoPrefersCorrectOrderOnRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1500
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = xs[i-1] + rng.NormFloat64()
	}
	m, err := FitAuto(xs, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.D != 1 {
		t.Errorf("random walk should pick d=1, got %v", m)
	}
}

func TestFitAutoTooShort(t *testing.T) {
	if _, err := FitAuto([]float64{1, 2}, 3, 1, 3); err == nil {
		t.Error("want error on tiny series")
	}
}

func TestModelString(t *testing.T) {
	m := &Model{P: 2, D: 1, Q: 1}
	if m.String() != "ARIMA(2,1,1)" {
		t.Errorf("String = %q", m.String())
	}
}

func TestForecasterOneStepAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const phi = 0.8
	n := 3000
	xs := make([]float64, n)
	for i := 1; i < n; i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	m, err := Fit(xs[:2000], 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewForecaster(m)
	var naiveSS, modelSS float64
	prev := 0.0
	for i, x := range xs[2000:] {
		fc, ready := f.Step(x)
		if !ready {
			prev = x
			continue
		}
		modelSS += (x - fc) * (x - fc)
		naiveSS += (x - prev) * (x - prev)
		prev = x
		_ = i
	}
	if modelSS >= naiveSS {
		t.Errorf("AR(1) forecast SS %v should beat naive last-value SS %v", modelSS, naiveSS)
	}
}

func TestForecasterTracksLinearTrendWithD1(t *testing.T) {
	// A perfect line is ARIMA(0,1,0) with drift C: forecasts should be
	// nearly exact once warm.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 3 * float64(i)
	}
	m, err := Fit(xs[:100], 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewForecaster(m)
	for i, x := range xs[100:] {
		fc, ready := f.Step(x)
		if ready && math.Abs(fc-x) > 1e-6 {
			t.Fatalf("point %d: forecast %v, want %v", i, fc, x)
		}
	}
}

func TestForecasterReadyAfterWarmUp(t *testing.T) {
	m := &Model{P: 2, D: 1, Phi: []float64{0.5, 0.1}}
	f := NewForecaster(m)
	if f.WarmUp() != 3 {
		t.Fatalf("WarmUp = %d, want 3", f.WarmUp())
	}
	for i := 0; i < f.WarmUp(); i++ {
		if _, ready := f.Step(float64(i)); ready {
			t.Fatalf("ready during warm-up point %d", i)
		}
	}
	if _, ready := f.Step(99); !ready {
		t.Error("not ready after warm-up")
	}
}

func TestForecasterReset(t *testing.T) {
	m := &Model{P: 1, Phi: []float64{0.9}}
	f := NewForecaster(m)
	f.Step(10)
	f.Step(20)
	f.Reset()
	if fc, ready := f.Step(5); ready || fc != 0 {
		t.Errorf("after Reset: forecast=%v ready=%v, want 0,false", fc, ready)
	}
}

func TestPushLag(t *testing.T) {
	var lags []float64
	lags = pushLag(lags, 1, 3)
	lags = pushLag(lags, 2, 3)
	lags = pushLag(lags, 3, 3)
	lags = pushLag(lags, 4, 3)
	want := []float64{4, 3, 2}
	for i := range want {
		if lags[i] != want[i] {
			t.Fatalf("lags = %v, want %v", lags, want)
		}
	}
	if got := pushLag(nil, 1, 0); len(got) != 0 {
		t.Errorf("pushLag n=0 = %v", got)
	}
}

// Property: forecaster never produces NaN/Inf on bounded data with a sane
// model fitted from that data.
func TestForecasterFiniteQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 300)
		for i := 1; i < len(xs); i++ {
			xs[i] = 0.5*xs[i-1] + rng.NormFloat64()
		}
		m, err := Fit(xs, 1, 1, 1)
		if err != nil {
			return true // too-short never happens here, but be lenient
		}
		fc := NewForecaster(m)
		for _, x := range xs {
			got, _ := fc.Step(x)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
