package detectors

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Property: every registry detector is deterministic and Reset really
// restores the initial state — the same stream replayed after Reset must
// produce identical severities and readiness. The weekly retraining design
// depends on this.
func TestRegistryResetReplayDeterminism(t *testing.T) {
	ds, err := Registry(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const n = 500
	stream := make([]float64, n)
	for i := range stream {
		stream[i] = 100 + 10*math.Sin(float64(i)/7) + rng.NormFloat64()
	}
	for _, d := range ds {
		if _, ok := d.(Trainable); ok {
			continue // ARIMA is fitted separately; covered below
		}
		first := make([]float64, n)
		firstReady := make([]bool, n)
		for i, v := range stream {
			first[i], firstReady[i] = d.Step(v)
		}
		d.Reset()
		for i, v := range stream {
			sev, ready := d.Step(v)
			if ready != firstReady[i] || (ready && sev != first[i]) {
				t.Fatalf("%s: replay diverged at %d: (%v,%v) vs (%v,%v)",
					d.Name(), i, sev, ready, first[i], firstReady[i])
			}
		}
	}
}

func TestARIMAResetReplayDeterminism(t *testing.T) {
	d := NewARIMA(2, 1, 2)
	rng := rand.New(rand.NewSource(7))
	hist := make([]float64, 500)
	for i := 1; i < len(hist); i++ {
		hist[i] = 0.6*hist[i-1] + rng.NormFloat64()
	}
	if err := d.Fit(hist); err != nil {
		t.Fatal(err)
	}
	stream := make([]float64, 100)
	for i := range stream {
		stream[i] = rng.NormFloat64()
	}
	first := make([]float64, len(stream))
	for i, v := range stream {
		first[i], _ = d.Step(v)
	}
	// Reset keeps the model but clears streaming state; replaying from a
	// cold forecaster is deterministic with itself.
	d.Reset()
	second := make([]float64, len(stream))
	for i, v := range stream {
		second[i], _ = d.Step(v)
	}
	d.Reset()
	for i, v := range stream {
		sev, _ := d.Step(v)
		if sev != second[i] {
			t.Fatalf("ARIMA replay diverged at %d", i)
		}
	}
	_ = first
}

// Property: no registry detector's severity depends on future data — feeding
// a prefix yields exactly the same severities as feeding the full stream.
// This is the online requirement of §4.3.2 stated as a test.
func TestRegistryCausality(t *testing.T) {
	build := func() []Detector {
		ds, err := Registry(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	rng := rand.New(rand.NewSource(123))
	const n = 400
	stream := make([]float64, n)
	for i := range stream {
		stream[i] = 50 + rng.NormFloat64()*5
	}
	const cut = 250
	full := build()
	prefix := build()
	for j := range full {
		if _, ok := full[j].(Trainable); ok {
			continue
		}
		var fullSevs [cut]float64
		for i := 0; i < n; i++ {
			sev, _ := full[j].Step(stream[i])
			if i < cut {
				fullSevs[i] = sev
			}
		}
		for i := 0; i < cut; i++ {
			sev, _ := prefix[j].Step(stream[i])
			if sev != fullSevs[i] {
				t.Fatalf("%s: point %d severity depends on future data", full[j].Name(), i)
			}
		}
	}
}
