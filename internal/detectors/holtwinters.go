package detectors

import (
	"fmt"
	"math"
)

// HoltWinters is additive triple exponential smoothing [6]: level, trend and
// a daily seasonal profile, each with its own smoothing constant. The
// severity of a point is the absolute residual between the observation and
// the one-step forecast made before seeing it. Table 3 sweeps
// alpha, beta, gamma over {0.2, 0.4, 0.6, 0.8}, giving 64 configurations.
type HoltWinters struct {
	alpha, beta, gamma float64
	period             int

	season []float64
	level  float64
	trend  float64
	warm   []float64 // first period, used to initialize
	t      int
}

// NewHoltWinters returns a Holt-Winters detector with the given smoothing
// constants and seasonal period in points (one day for the paper's KPIs).
func NewHoltWinters(alpha, beta, gamma float64, period int) *HoltWinters {
	if period < 2 {
		panic(fmt.Sprintf("detectors: holt-winters period %d", period))
	}
	for _, p := range []float64{alpha, beta, gamma} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("detectors: holt-winters parameter %v out of [0,1]", p))
		}
	}
	return &HoltWinters{alpha: alpha, beta: beta, gamma: gamma, period: period}
}

// Name implements Detector.
func (d *HoltWinters) Name() string {
	return fmt.Sprintf("holt_winters(a=%.1f,b=%.1f,g=%.1f)", d.alpha, d.beta, d.gamma)
}

// Step implements Detector.
func (d *HoltWinters) Step(v float64) (float64, bool) {
	defer func() { d.t++ }()
	if d.t < d.period {
		// Collect the first period to bootstrap level and seasonal profile.
		d.warm = append(d.warm, v)
		if d.t == d.period-1 {
			mean := 0.0
			for _, w := range d.warm {
				mean += w
			}
			mean /= float64(len(d.warm))
			d.level = mean
			d.trend = 0
			d.season = make([]float64, d.period)
			for i, w := range d.warm {
				d.season[i] = w - mean
			}
			d.warm = nil
		}
		return 0, false
	}
	si := d.t % d.period
	forecast := d.level + d.trend + d.season[si]
	sev := math.Abs(v - forecast)

	prevLevel := d.level
	d.level = d.alpha*(v-d.season[si]) + (1-d.alpha)*(d.level+d.trend)
	d.trend = d.beta*(d.level-prevLevel) + (1-d.beta)*d.trend
	d.season[si] = d.gamma*(v-d.level) + (1-d.gamma)*d.season[si]

	// The second period still runs on a rough initialization; report ready
	// only from the third period on.
	return sev, d.t >= 2*d.period
}

// Reset implements Detector.
func (d *HoltWinters) Reset() {
	d.season, d.warm = nil, nil
	d.level, d.trend = 0, 0
	d.t = 0
}
