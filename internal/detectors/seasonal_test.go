package detectors

import (
	"math"
	"math/rand"
	"testing"
)

// tiny synthetic "day" of 8 points and "week" of 56 for fast seasonal tests.
const (
	tppd = 8
	tppw = 56
)

// seasonalValue is a deterministic daily pattern.
func seasonalValue(t int) float64 {
	return 100 + 10*math.Sin(2*math.Pi*float64(t%tppd)/tppd)
}

func TestHistoricalAverageFlagsDeviation(t *testing.T) {
	d := NewHistoricalAverage(1, tppd)
	rng := rand.New(rand.NewSource(3))
	var normalSev float64
	// Warm up more than 1 week.
	for i := 0; i < 2*tppw; i++ {
		sev, ready := d.Step(seasonalValue(i) + rng.NormFloat64())
		if ready {
			normalSev = sev
		}
	}
	spikeSev, ready := d.Step(seasonalValue(2*tppw) + 50)
	if !ready {
		t.Fatal("should be ready after 2 weeks")
	}
	if spikeSev < 5*math.Max(normalSev, 1) {
		t.Errorf("spike severity %v should dwarf normal %v", spikeSev, normalSev)
	}
}

func TestHistoricalAverageWarmUpIsWinWeeks(t *testing.T) {
	d := NewHistoricalAverage(2, tppd)
	for i := 0; i < 2*tppw; i++ {
		if _, ready := d.Step(1); ready {
			t.Fatalf("ready at point %d, need %d", i, 2*tppw)
		}
	}
	if _, ready := d.Step(1); !ready {
		t.Error("should be ready after 2 weeks")
	}
}

func TestHistoricalMADRobustToOutlierInHistory(t *testing.T) {
	// Poison one historical value; the MAD variant's severity for a normal
	// point should stay small while the mean/std variant's estimate moves.
	mkStream := func(d Detector) float64 {
		for i := 0; i < 3*tppw; i++ {
			v := seasonalValue(i)
			if i == tppw+4 { // one dirty point in history
				v += 1000
			}
			d.Step(v)
		}
		sev, _ := d.Step(seasonalValue(3 * tppw))
		return sev
	}
	madSev := mkStream(NewHistoricalMAD(3, tppd))
	if madSev > 1 {
		t.Errorf("MAD severity for clean point = %v, want ≈ 0", madSev)
	}
}

func TestTSDDetectsWeeklyViolation(t *testing.T) {
	d := NewTSD(2, tppw, tppd)
	var normalSev float64
	for i := 0; i < 4*tppw; i++ {
		sev, ready := d.Step(seasonalValue(i))
		if ready {
			normalSev = sev
		}
	}
	spikeSev, ready := d.Step(seasonalValue(4*tppw) - 40)
	if !ready {
		t.Fatal("not ready after 4 weeks")
	}
	if spikeSev <= normalSev+1 {
		t.Errorf("dip severity %v should exceed normal %v", spikeSev, normalSev)
	}
}

func TestTSDWarmUp(t *testing.T) {
	d := NewTSD(1, tppw, tppd)
	ready := false
	readyAt := -1
	for i := 0; i < 2*tppw && !ready; i++ {
		_, ready = d.Step(1)
		if ready {
			readyAt = i
		}
	}
	// Needs 1 week of phases plus the residual trend window (tppd here).
	if readyAt < tppw || readyAt > tppw+tppd+1 {
		t.Errorf("ready at %d, want within [%d, %d]", readyAt, tppw, tppw+tppd+1)
	}
}

func TestTSDMADRobustness(t *testing.T) {
	// Same-phase dirty data in one past week should barely move the robust
	// variant's severity for a clean point.
	clean := NewTSDMAD(5, tppw, tppd)
	dirty := NewTSDMAD(5, tppw, tppd)
	for i := 0; i < 6*tppw; i++ {
		v := seasonalValue(i)
		clean.Step(v)
		if i == 3*tppw+7 {
			v += 500
		}
		dirty.Step(v)
	}
	next := seasonalValue(6 * tppw)
	sc, _ := clean.Step(next)
	sd, _ := dirty.Step(next)
	if math.Abs(sc-sd) > 1.0 {
		t.Errorf("dirty history changed robust severity too much: clean %v vs dirty %v", sc, sd)
	}
}

func TestSeasonalResets(t *testing.T) {
	ds := []Detector{
		NewHistoricalAverage(1, tppd),
		NewHistoricalMAD(1, tppd),
		NewTSD(1, tppw, tppd),
		NewTSDMAD(1, tppw, tppd),
	}
	for _, d := range ds {
		for i := 0; i < 3*tppw; i++ {
			d.Step(seasonalValue(i))
		}
		d.Reset()
		if _, ready := d.Step(1); ready {
			t.Errorf("%s: ready right after Reset", d.Name())
		}
	}
}

func TestPhaseHistoryPeekExcludesCurrent(t *testing.T) {
	ph := newPhaseHistory(2, 2)
	ph.push(1)     // phase 0
	ph.push(2)     // phase 1
	ph.push(3)     // phase 0
	ph.push(4)     // phase 1
	r := ph.peek() // phase 0 history: {1, 3}
	if r.len() != 2 {
		t.Fatalf("phase ring len = %d, want 2", r.len())
	}
	vals := r.values(nil)
	sum := vals[0] + vals[1]
	if sum != 4 {
		t.Errorf("phase-0 history = %v, want {1,3}", vals)
	}
}

func TestPhaseHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	newPhaseHistory(0, 1)
}

func TestSeasonalSeveritiesFinite(t *testing.T) {
	// Constant data must not divide by zero anywhere.
	ds := []Detector{
		NewHistoricalAverage(1, tppd),
		NewHistoricalMAD(1, tppd),
		NewTSD(1, tppw, tppd),
		NewTSDMAD(1, tppw, tppd),
	}
	for _, d := range ds {
		for i := 0; i < 3*tppw; i++ {
			sev, _ := d.Step(7)
			if math.IsNaN(sev) || math.IsInf(sev, 0) {
				t.Fatalf("%s: non-finite severity on constant data", d.Name())
			}
		}
	}
}
