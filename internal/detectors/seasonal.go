package detectors

import (
	"fmt"
	"math"

	"opprentice/internal/timeseries"
)

// phaseHistory stores, for every phase of a seasonal period, a ring of the
// values seen at that phase in past periods. Phases are counted from the
// start of the stream; absolute wall-clock alignment is irrelevant as long
// as the period is right.
type phaseHistory struct {
	period int
	depth  int
	rings  []*ring
	t      int
}

func newPhaseHistory(period, depth int) *phaseHistory {
	if period < 1 || depth < 1 {
		panic(fmt.Sprintf("detectors: phase history period=%d depth=%d", period, depth))
	}
	ph := &phaseHistory{period: period, depth: depth, rings: make([]*ring, period)}
	for i := range ph.rings {
		ph.rings[i] = newRing(depth)
	}
	return ph
}

// peek returns the ring for the current phase: past periods' values at this
// phase, not yet including the incoming point. Callers must read it before
// calling push.
func (ph *phaseHistory) peek() *ring { return ph.rings[ph.t%ph.period] }

// push records v at the current phase and advances to the next point.
func (ph *phaseHistory) push(v float64) {
	ph.rings[ph.t%ph.period].push(v)
	ph.t++
}

func (ph *phaseHistory) reset() {
	for _, r := range ph.rings {
		r.reset()
	}
	ph.t = 0
}

// HistoricalAverage assumes values at the same time of day follow a Gaussian
// distribution and reports how many standard deviations the point sits from
// the mean of the past win weeks of same-time-of-day values [5].
type HistoricalAverage struct {
	winWeeks int
	ppd      int
	ph       *phaseHistory
	scratch  []float64
}

// NewHistoricalAverage returns the detector with a win-week day-phase
// history; ppd is the number of points per day.
func NewHistoricalAverage(winWeeks, ppd int) *HistoricalAverage {
	return &HistoricalAverage{
		winWeeks: winWeeks,
		ppd:      ppd,
		ph:       newPhaseHistory(ppd, winWeeks*7),
	}
}

// Name implements Detector.
func (d *HistoricalAverage) Name() string {
	return fmt.Sprintf("historical_avg(win=%dw)", d.winWeeks)
}

// Step implements Detector.
func (d *HistoricalAverage) Step(v float64) (float64, bool) {
	hist := d.ph.peek()
	defer d.ph.push(v)
	if !hist.full {
		return 0, false
	}
	mean, std := hist.meanStd()
	return math.Abs(v-mean) / (std + eps), true
}

// Reset implements Detector.
func (d *HistoricalAverage) Reset() { d.ph.reset() }

// HistoricalMAD is HistoricalAverage with the median and the median absolute
// deviation replacing mean and standard deviation, for robustness to dirty
// data [3, 15].
type HistoricalMAD struct {
	winWeeks int
	ph       *phaseHistory
	scratch  []float64
}

// NewHistoricalMAD returns the robust variant; ppd is points per day.
func NewHistoricalMAD(winWeeks, ppd int) *HistoricalMAD {
	return &HistoricalMAD{winWeeks: winWeeks, ph: newPhaseHistory(ppd, winWeeks*7)}
}

// Name implements Detector.
func (d *HistoricalMAD) Name() string {
	return fmt.Sprintf("historical_mad(win=%dw)", d.winWeeks)
}

// Step implements Detector.
func (d *HistoricalMAD) Step(v float64) (float64, bool) {
	hist := d.ph.peek()
	defer d.ph.push(v)
	if !hist.full {
		return 0, false
	}
	// The scratch buffer is an owned copy of the ring, refilled every step,
	// so the in-place median/MAD (which scrambles it) is free to reorder.
	d.scratch = hist.values(d.scratch[:0])
	med, mad := timeseries.MedianMADInPlace(d.scratch)
	return math.Abs(v-med) / (mad + eps), true
}

// Reset implements Detector.
func (d *HistoricalMAD) Reset() { d.ph.reset() }

// trendWindow bounds the residual window used by TSD's detrending so the
// per-point cost stays small at fine data intervals.
const trendWindow = 60

// TSD is a time-series-decomposition detector [1]: the point is decomposed
// into a weekly seasonal component (mean of the same week-slot over the past
// win weeks), a short-term trend (mean of recent residuals) and noise. The
// severity is the noise magnitude in units of the recent residual standard
// deviation.
type TSD struct {
	winWeeks int
	ph       *phaseHistory
	resid    *ring
	sum, ssq float64
}

// NewTSD returns the detector; ppw is points per week, ppd points per day.
func NewTSD(winWeeks, ppw, ppd int) *TSD {
	tw := trendWindow
	if ppd < tw {
		tw = ppd
	}
	return &TSD{
		winWeeks: winWeeks,
		ph:       newPhaseHistory(ppw, winWeeks),
		resid:    newRing(tw),
	}
}

// Name implements Detector.
func (d *TSD) Name() string { return fmt.Sprintf("tsd(win=%dw)", d.winWeeks) }

// Step implements Detector.
func (d *TSD) Step(v float64) (float64, bool) {
	hist := d.ph.peek()
	defer d.ph.push(v)
	if !hist.full {
		return 0, false
	}
	mean, _ := hist.meanStd()
	r := v - mean
	ready := d.resid.full
	sev := 0.0
	if ready {
		n := float64(d.resid.len())
		trend := d.sum / n
		variance := d.ssq/n - trend*trend
		if variance < 0 {
			variance = 0
		}
		sev = math.Abs(r-trend) / (math.Sqrt(variance) + eps)
		old := d.resid.oldest()
		d.sum -= old
		d.ssq -= old * old
	}
	d.resid.push(r)
	d.sum += r
	d.ssq += r * r
	return sev, ready
}

// Reset implements Detector.
func (d *TSD) Reset() {
	d.ph.reset()
	d.resid.reset()
	d.sum, d.ssq = 0, 0
}

// TSDMAD is TSD with median/MAD replacing mean/std in both the seasonal
// estimate and the residual normalization, improving robustness to dirty
// data [3, 15].
type TSDMAD struct {
	winWeeks int
	ph       *phaseHistory
	resid    *ring
	scratch  []float64
}

// NewTSDMAD returns the robust decomposition detector.
func NewTSDMAD(winWeeks, ppw, ppd int) *TSDMAD {
	tw := trendWindow
	if ppd < tw {
		tw = ppd
	}
	return &TSDMAD{
		winWeeks: winWeeks,
		ph:       newPhaseHistory(ppw, winWeeks),
		resid:    newRing(tw),
	}
}

// Name implements Detector.
func (d *TSDMAD) Name() string { return fmt.Sprintf("tsd_mad(win=%dw)", d.winWeeks) }

// Step implements Detector.
func (d *TSDMAD) Step(v float64) (float64, bool) {
	hist := d.ph.peek()
	defer d.ph.push(v)
	if !hist.full {
		return 0, false
	}
	// Scratch is refilled from the rings before each use, so the in-place
	// median/MAD (which scrambles it) never sees stale data.
	d.scratch = hist.values(d.scratch[:0])
	seasonal := timeseries.MedianInPlace(d.scratch)
	r := v - seasonal
	ready := d.resid.full
	sev := 0.0
	if ready {
		d.scratch = d.resid.values(d.scratch[:0])
		trend, spread := timeseries.MedianMADInPlace(d.scratch)
		sev = math.Abs(r-trend) / (spread + eps)
	}
	d.resid.push(r)
	return sev, ready
}

// Reset implements Detector.
func (d *TSDMAD) Reset() {
	d.ph.reset()
	d.resid.reset()
}
