package detectors

import (
	"fmt"
	"math"

	"opprentice/internal/wavelet"
)

// WaveletDetector is the signal-analysis detector [12]: an undecimated Haar
// multi-resolution analysis over a window of win days splits the signal into
// frequency bands, and the severity is the magnitude of the chosen band's
// coefficient in units of that band's own (exponentially tracked) spread.
// Table 3 sweeps win ∈ {3, 5, 7} days × band ∈ {low, mid, high},
// 9 configurations.
type WaveletDetector struct {
	winDays int
	band    wavelet.Band
	mra     *wavelet.MRA

	// Exponentially weighted mean/variance of the band value, and of the
	// approximation (for the low band's drift term).
	lambda     float64
	bandMean   float64
	bandVar    float64
	approxMean float64
	n          int
}

// NewWavelet returns a wavelet detector; ppd is points per day. The number
// of MRA levels is chosen so the coarsest scale spans roughly the window.
func NewWavelet(winDays int, band wavelet.Band, ppd int) *WaveletDetector {
	if winDays < 1 {
		panic(fmt.Sprintf("detectors: wavelet window %d days", winDays))
	}
	span := winDays * ppd
	levels := 1
	for (1 << (levels + 1)) <= span {
		levels++
	}
	if levels > 12 {
		levels = 12
	}
	if levels < 3 {
		levels = 3
	}
	return &WaveletDetector{
		winDays: winDays,
		band:    band,
		mra:     wavelet.NewMRA(levels),
		// Track band statistics over roughly one window of points.
		lambda: 2 / (float64(span) + 1),
	}
}

// Name implements Detector.
func (d *WaveletDetector) Name() string {
	return fmt.Sprintf("wavelet(win=%dd,freq=%s)", d.winDays, d.band)
}

// Step implements Detector.
func (d *WaveletDetector) Step(v float64) (float64, bool) {
	details, approx, ready := d.mra.Push(v)
	if !ready {
		// Seed the trackers during warm-up so they start near the signal.
		d.approxMean = approx
		return 0, false
	}
	bandVal := wavelet.BandValue(d.band, details, approx-d.approxMean)
	d.approxMean += d.lambda * (approx - d.approxMean)

	d.n++
	sev := 0.0
	if d.n > 1 {
		sev = math.Abs(bandVal-d.bandMean) / (math.Sqrt(d.bandVar) + eps)
	}
	delta := bandVal - d.bandMean
	d.bandMean += d.lambda * delta
	d.bandVar = (1 - d.lambda) * (d.bandVar + d.lambda*delta*delta)
	// Require a few points of band statistics before reporting ready.
	return sev, d.n > 8
}

// Reset implements Detector.
func (d *WaveletDetector) Reset() {
	d.mra.Reset()
	d.bandMean, d.bandVar, d.approxMean = 0, 0, 0
	d.n = 0
}
