package detectors

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"opprentice/internal/linalg"
	"opprentice/internal/wavelet"
)

func TestHoltWintersLearnsSeasonalPattern(t *testing.T) {
	d := NewHoltWinters(0.4, 0.2, 0.4, tppd)
	var lastSev float64
	var ready bool
	for i := 0; i < 6*tppd; i++ {
		lastSev, ready = d.Step(seasonalValue(i))
	}
	if !ready {
		t.Fatal("should be ready after 6 periods")
	}
	if lastSev > 2 {
		t.Errorf("severity on learned pattern = %v, want small", lastSev)
	}
	spike, _ := d.Step(seasonalValue(6*tppd) + 60)
	if spike < 30 {
		t.Errorf("spike severity = %v, want ≈ 60", spike)
	}
}

func TestHoltWintersReadyAfterTwoPeriods(t *testing.T) {
	d := NewHoltWinters(0.2, 0.2, 0.2, 4)
	readyAt := -1
	for i := 0; i < 20 && readyAt < 0; i++ {
		if _, ready := d.Step(float64(i % 4)); ready {
			readyAt = i
		}
	}
	if readyAt != 8 {
		t.Errorf("ready at point %d, want 8 (two periods)", readyAt)
	}
}

func TestHoltWintersPanics(t *testing.T) {
	cases := []func(){
		func() { NewHoltWinters(1.5, 0.2, 0.2, 4) },
		func() { NewHoltWinters(0.2, 0.2, 0.2, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHoltWintersReset(t *testing.T) {
	d := NewHoltWinters(0.2, 0.2, 0.2, 4)
	for i := 0; i < 30; i++ {
		d.Step(float64(i))
	}
	d.Reset()
	if _, ready := d.Step(1); ready {
		t.Error("ready after Reset")
	}
}

func TestSVDWarmUpAndSpike(t *testing.T) {
	d := NewSVD(10, 3)
	rng := rand.New(rand.NewSource(5))
	var normal float64
	for i := 0; i < 29; i++ {
		if _, ready := d.Step(rng.NormFloat64()); ready {
			t.Fatalf("ready at point %d, need 30", i)
		}
	}
	for i := 0; i < 100; i++ {
		normal, _ = d.Step(math.Sin(float64(i)/5) + 0.01*rng.NormFloat64())
	}
	spike, ready := d.Step(25)
	if !ready {
		t.Fatal("not ready")
	}
	if spike < 10*math.Max(normal, 0.1) {
		t.Errorf("spike severity %v should dwarf normal %v", spike, normal)
	}
}

// The power-iteration subspace must match the full Jacobi SVD's dominant
// left singular vector: projecting the test vector onto either must give the
// same residual.
func TestSVDMatchesJacobiRank1(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows, cols := 10, 3
	d := NewSVD(rows, cols)
	n := rows * cols
	var stream []float64
	var got float64
	for i := 0; i < n+37; i++ {
		v := math.Sin(float64(i)/3) + rng.NormFloat64()*0.1
		stream = append(stream, v)
		got, _ = d.Step(v)
	}
	// At the final Step, history excludes the last point.
	hist := stream[len(stream)-1-n : len(stream)-1]
	test := stream[len(stream)-rows:]
	m := linalg.NewMatrix(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, hist[j*rows+i])
		}
	}
	svd, err := linalg.ComputeSVD(m)
	if err != nil {
		t.Fatal(err)
	}
	// Project the test vector onto u1 and take the last-element residual.
	dot := 0.0
	for i := 0; i < rows; i++ {
		dot += svd.U.At(i, 0) * test[i]
	}
	want := math.Abs(test[rows-1] - dot*svd.U.At(rows-1, 0))
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("power-iteration residual %v vs Jacobi %v", got, want)
	}
}

func TestSVDZeroWindow(t *testing.T) {
	d := NewSVD(5, 3)
	var sev float64
	var ready bool
	for i := 0; i < 20; i++ {
		sev, ready = d.Step(0)
	}
	if !ready || sev != 0 {
		t.Errorf("zero window: sev=%v ready=%v", sev, ready)
	}
}

func TestSVDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewSVD(1, 3)
}

func TestWaveletHighBandCatchesJitter(t *testing.T) {
	d := NewWavelet(1, wavelet.High, 64)
	rng := rand.New(rand.NewSource(9))
	var normal float64
	for i := 0; i < 400; i++ {
		normal, _ = d.Step(10 + 0.1*rng.NormFloat64())
	}
	spike, ready := d.Step(30)
	if !ready {
		t.Fatal("not ready after 400 points")
	}
	if spike < 3*math.Max(normal, 1) {
		t.Errorf("jitter severity %v should exceed normal %v", spike, normal)
	}
}

func TestWaveletLowBandCatchesLevelShift(t *testing.T) {
	low := NewWavelet(1, wavelet.Low, 64)
	for i := 0; i < 600; i++ {
		low.Step(10)
	}
	// Sustained shift: the low band should spike while the shift propagates
	// to the coarse scales (the detector then adapts, so take the max).
	maxSev := 0.0
	for i := 0; i < 40; i++ {
		sev, _ := low.Step(20)
		if sev > maxSev {
			maxSev = sev
		}
	}
	if maxSev < 10 {
		t.Errorf("max low-band severity after sustained shift = %v, want large", maxSev)
	}
}

func TestWaveletNamesAndReset(t *testing.T) {
	d := NewWavelet(3, wavelet.Mid, 16)
	if d.Name() != "wavelet(win=3d,freq=mid)" {
		t.Errorf("Name = %q", d.Name())
	}
	for i := 0; i < 300; i++ {
		d.Step(float64(i % 7))
	}
	d.Reset()
	if _, ready := d.Step(1); ready {
		t.Error("ready after Reset")
	}
}

func TestWaveletPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewWavelet(0, wavelet.Low, 16)
}

func TestARIMADetectorLifecycle(t *testing.T) {
	d := NewARIMA(2, 1, 2)
	if _, ready := d.Step(1); ready {
		t.Error("untrained ARIMA should not be ready")
	}
	rng := rand.New(rand.NewSource(4))
	hist := make([]float64, 600)
	for i := 1; i < len(hist); i++ {
		hist[i] = 0.7*hist[i-1] + rng.NormFloat64()
	}
	if err := d.Fit(hist); err != nil {
		t.Fatal(err)
	}
	if d.Model() == nil {
		t.Fatal("Model should be set after Fit")
	}
	var normal float64
	x := hist[len(hist)-1]
	for i := 0; i < 100; i++ {
		x = 0.7*x + rng.NormFloat64()
		normal, _ = d.Step(x)
	}
	spike, ready := d.Step(x + 40)
	if !ready {
		t.Fatal("not ready after Fit")
	}
	if spike < 5*math.Max(normal, 1) {
		t.Errorf("spike severity %v should exceed normal %v", spike, normal)
	}
}

func TestARIMAFitTooShort(t *testing.T) {
	d := NewARIMA(2, 1, 2)
	if err := d.Fit([]float64{1, 2, 3}); err == nil {
		t.Error("want error on tiny history")
	}
}

func TestRegistryBuilds133(t *testing.T) {
	ds, err := Registry(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != NumConfigurations {
		t.Fatalf("registry size = %d, want %d", len(ds), NumConfigurations)
	}
	seen := make(map[string]bool, len(ds))
	for _, d := range ds {
		if seen[d.Name()] {
			t.Errorf("duplicate configuration name %q", d.Name())
		}
		seen[d.Name()] = true
	}
}

func TestRegistryMatchesTable3(t *testing.T) {
	total := 0
	for _, spec := range Table3() {
		total += spec.Configs
	}
	if total != NumConfigurations {
		t.Errorf("Table 3 totals %d configurations, want %d", total, NumConfigurations)
	}
	if len(Table3()) != 14 {
		t.Errorf("Table 3 lists %d detectors, want 14", len(Table3()))
	}
}

func TestRegistryRejectsBadInterval(t *testing.T) {
	if _, err := Registry(7 * time.Minute); err == nil {
		t.Error("7-minute interval should be rejected")
	}
	if _, err := Registry(0); err == nil {
		t.Error("zero interval should be rejected")
	}
}

func TestNames(t *testing.T) {
	ds := []Detector{NewSimpleThreshold(), NewEWMA(0.5)}
	names := Names(ds)
	if names[0] != "simple_threshold" || names[1] != "ewma(alpha=0.5)" {
		t.Errorf("Names = %v", names)
	}
}

// Every registry detector must keep severities finite and non-negative on a
// realistic noisy seasonal stream — the invariant the feature matrix relies
// on.
func TestAllConfigurationsFiniteSeverities(t *testing.T) {
	ds, err := Registry(time.Hour) // coarse interval keeps the test fast
	if err != nil {
		t.Fatal(err)
	}
	ppd := 24
	rng := rand.New(rand.NewSource(12))
	hist := make([]float64, 21*24) // 3 weeks hourly for the ARIMA fit
	for i := range hist {
		hist[i] = 100 + 20*math.Sin(2*math.Pi*float64(i%ppd)/float64(ppd)) + rng.NormFloat64()
	}
	for _, d := range ds {
		if tr, ok := d.(Trainable); ok {
			if err := tr.Fit(hist); err != nil {
				t.Fatalf("%s: Fit: %v", d.Name(), err)
			}
		}
	}
	for i := 0; i < 21*24; i++ {
		v := 100 + 20*math.Sin(2*math.Pi*float64(i%ppd)/float64(ppd)) + rng.NormFloat64()
		if i%100 == 17 {
			v *= 1.8 // occasional spike
		}
		for _, d := range ds {
			sev, _ := d.Step(v)
			if sev < 0 || math.IsNaN(sev) || math.IsInf(sev, 0) {
				t.Fatalf("%s: severity %v at point %d", d.Name(), sev, i)
			}
		}
	}
}
