package detectors

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestCUSUMDetectsLevelShift(t *testing.T) {
	d := NewCUSUM(0.5, 60)
	rng := rand.New(rand.NewSource(1))
	var normal float64
	for i := 0; i < 500; i++ {
		normal, _ = d.Step(10 + rng.NormFloat64())
	}
	// Sustained shift: CUSUM accumulates drift quickly.
	var shifted float64
	for i := 0; i < 10; i++ {
		shifted, _ = d.Step(15 + rng.NormFloat64())
	}
	if shifted < normal+5 {
		t.Errorf("post-shift severity %v should far exceed pre-shift %v", shifted, normal)
	}
}

func TestCUSUMDirectionless(t *testing.T) {
	up := NewCUSUM(0.5, 60)
	down := NewCUSUM(0.5, 60)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		v := 10 + rng.NormFloat64()
		up.Step(v)
		down.Step(v)
	}
	var sevUp, sevDown float64
	for i := 0; i < 8; i++ {
		sevUp, _ = up.Step(14)
		sevDown, _ = down.Step(6)
	}
	if sevUp < 3 || sevDown < 3 {
		t.Errorf("both directions should alarm: up=%v down=%v", sevUp, sevDown)
	}
}

func TestCUSUMWarmUpAndReset(t *testing.T) {
	d := NewCUSUM(1, 30)
	for i := 0; i < 8; i++ {
		if _, ready := d.Step(1); ready {
			t.Fatalf("ready at point %d", i)
		}
	}
	if _, ready := d.Step(1); !ready {
		t.Error("should be ready after 9 points")
	}
	d.Reset()
	if _, ready := d.Step(1); ready {
		t.Error("ready after Reset")
	}
}

func TestCUSUMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewCUSUM(-1, 30)
}

func TestRateOfChange(t *testing.T) {
	d := NewRateOfChange()
	if _, ready := d.Step(100); ready {
		t.Error("first point should not be ready")
	}
	sev, ready := d.Step(150)
	if !ready || math.Abs(sev-0.5) > 1e-9 {
		t.Errorf("sev = %v, want 0.5", sev)
	}
	// Scale invariance: the same relative step gives the same severity.
	d2 := NewRateOfChange()
	d2.Step(100000)
	sev2, _ := d2.Step(150000)
	if math.Abs(sev-sev2) > 1e-9 {
		t.Errorf("rate of change should be scale invariant: %v vs %v", sev, sev2)
	}
	d.Reset()
	if _, ready := d.Step(1); ready {
		t.Error("ready after Reset")
	}
}

func TestExtendedRegistry(t *testing.T) {
	ds, err := ExtendedRegistry(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != NumConfigurations+4 {
		t.Fatalf("extended registry size = %d, want %d", len(ds), NumConfigurations+4)
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Name()] {
			t.Errorf("duplicate name %q", d.Name())
		}
		seen[d.Name()] = true
	}
	if _, err := ExtendedRegistry(11 * time.Minute); err == nil {
		t.Error("bad interval should propagate")
	}
}
