package detectors

import (
	"fmt"
	"math"
	"time"
)

// This file holds "emerging" detectors beyond Table 3. The paper's framework
// claim (§4.3.2, §8) is that new detectors plug in without tuning as long as
// they fit the severity model and run online; Extended builds the default
// registry plus these, and the PLUG experiment shows the forest absorbing
// them.

// CUSUM is a cumulative-sum change detector (Page's test): it accumulates
// positive and negative deviations from a running mean and reports the
// larger accumulated drift, in units of the running standard deviation.
type CUSUM struct {
	k      float64 // slack in sigmas before drift accumulates
	lambda float64 // forgetting factor for the running mean/var
	mean   float64
	varr   float64
	pos    float64
	neg    float64
	n      int
}

// NewCUSUM returns a CUSUM detector with the given slack (in standard
// deviations) and running-statistics window (points).
func NewCUSUM(slack float64, window int) *CUSUM {
	if slack < 0 || window < 2 {
		panic(fmt.Sprintf("detectors: cusum slack=%v window=%d", slack, window))
	}
	return &CUSUM{k: slack, lambda: 2 / (float64(window) + 1)}
}

// Name implements Detector.
func (d *CUSUM) Name() string { return fmt.Sprintf("cusum(k=%.1f)", d.k) }

// Step implements Detector.
func (d *CUSUM) Step(v float64) (float64, bool) {
	d.n++
	if d.n == 1 {
		d.mean = v
		return 0, false
	}
	std := math.Sqrt(d.varr) + eps
	z := (v - d.mean) / std
	d.pos = math.Max(0, d.pos+z-d.k)
	d.neg = math.Max(0, d.neg-z-d.k)

	delta := v - d.mean
	d.mean += d.lambda * delta
	d.varr = (1 - d.lambda) * (d.varr + d.lambda*delta*delta)

	return math.Max(d.pos, d.neg), d.n > 8
}

// Reset implements Detector.
func (d *CUSUM) Reset() {
	d.mean, d.varr, d.pos, d.neg = 0, 0, 0, 0
	d.n = 0
}

// RateOfChange measures the relative step between consecutive points,
// |v−prev| / (|prev|+ε) — a dimensionless variant of Diff that transfers
// across KPI scales without normalization.
type RateOfChange struct {
	prev float64
	seen bool
}

// NewRateOfChange returns the detector.
func NewRateOfChange() *RateOfChange { return &RateOfChange{} }

// Name implements Detector.
func (d *RateOfChange) Name() string { return "rate_of_change" }

// Step implements Detector.
func (d *RateOfChange) Step(v float64) (float64, bool) {
	if !d.seen {
		d.prev, d.seen = v, true
		return 0, false
	}
	sev := math.Abs(v-d.prev) / (math.Abs(d.prev) + eps)
	d.prev = v
	return sev, true
}

// Reset implements Detector.
func (d *RateOfChange) Reset() { d.prev, d.seen = 0, false }

// ExtendedRegistry builds the default 133 configurations plus the emerging
// ones (3 CUSUM slacks and rate-of-change) — the "plug in new detectors
// without tuning" path of §4.3.2/§8. The extra configurations keep the same
// online contract, so Opprentice needs no change to absorb them.
func ExtendedRegistry(interval time.Duration) ([]Detector, error) {
	ds, err := Registry(interval)
	if err != nil {
		return nil, err
	}
	window := 120
	for _, k := range []float64{0.5, 1.0, 2.0} {
		ds = append(ds, NewCUSUM(k, window))
	}
	ds = append(ds, NewRateOfChange())
	return ds, nil
}
