package detectors

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// contractStreams builds the adversarial input families every detector
// configuration must survive: seeded noise around a level, a seasonal shape,
// a perfectly constant series (zero variance denominators), an
// all-zero series, NaN-holed noise (missing scrapes), and step changes.
// All generators are seeded — a failure names the stream and index and
// reproduces exactly.
func contractStreams(n int) map[string][]float64 {
	streams := make(map[string][]float64)

	rng := rand.New(rand.NewSource(4242))
	noisy := make([]float64, n)
	for i := range noisy {
		noisy[i] = 120 + rng.NormFloat64()*8
	}
	streams["noisy"] = noisy

	seasonal := make([]float64, n)
	for i := range seasonal {
		seasonal[i] = 200 + 80*math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()*4
	}
	streams["seasonal"] = seasonal

	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 42
	}
	streams["constant"] = constant

	streams["zeros"] = make([]float64, n)

	holed := make([]float64, n)
	for i := range holed {
		if rng.Float64() < 0.05 {
			holed[i] = math.NaN() // a missing scrape
		} else {
			holed[i] = 90 + rng.NormFloat64()*6
		}
	}
	streams["nan-holed"] = holed

	steps := make([]float64, n)
	for i := range steps {
		level := 10.0
		if (i/100)%2 == 1 {
			level = 1000
		}
		steps[i] = level + rng.NormFloat64()
	}
	streams["step-changes"] = steps

	return streams
}

// hasNaN reports whether any value in vs is NaN.
func hasNaN(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// TestRegistrySeverityContract states the severity contract of §4.3 as a
// property: on any input stream, a ready severity is never negative and
// never infinite, and on streams without missing points it is never NaN
// either (NaN severities are only acceptable downstream of a NaN input,
// where the extraction layer imputes them). A violation here would poison
// the feature matrix for every classifier trained on the configuration.
func TestRegistrySeverityContract(t *testing.T) {
	const n = 600
	for streamName, stream := range contractStreams(n) {
		clean := !hasNaN(stream)
		ds, err := Registry(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if tr, ok := d.(Trainable); ok {
				// Trainable detectors are fitted on clean history before
				// streaming, like training does.
				hist := contractStreams(n)["seasonal"]
				if err := tr.Fit(hist); err != nil {
					t.Fatalf("%s: fit on clean history: %v", d.Name(), err)
				}
			}
			for i, v := range stream {
				sev, ready := d.Step(v)
				if !ready {
					continue
				}
				if sev < 0 {
					t.Fatalf("%s on %s stream: negative severity %v at %d (input %v)",
						d.Name(), streamName, sev, i, v)
				}
				if math.IsInf(sev, 0) {
					t.Fatalf("%s on %s stream: infinite severity at %d (input %v)",
						d.Name(), streamName, i, v)
				}
				if clean && math.IsNaN(sev) {
					t.Fatalf("%s on %s stream: NaN severity at %d with no NaN anywhere in the input (input %v)",
						d.Name(), streamName, i, v)
				}
			}
		}
	}
}

// TestRegistryConfigNamesUnique: configuration names key feature columns,
// caches, and degraded-set bookkeeping — a duplicate would silently merge
// two features.
func TestRegistryConfigNamesUnique(t *testing.T) {
	ds, err := Registry(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(ds))
	for _, d := range ds {
		name := d.Name()
		if name == "" {
			t.Fatal("detector with empty configuration name")
		}
		if seen[name] {
			t.Fatalf("duplicate configuration name %q", name)
		}
		seen[name] = true
	}
	if len(seen) < 10 {
		t.Fatalf("registry has only %d configurations; the paper's ensemble needs a real spread", len(seen))
	}
}
