// Package detectors implements the 14 basic anomaly detectors of Table 3 as
// streaming *feature extractors*, following the paper's unified model
// (§4.3.1):
//
//	data point --[detector + parameters]--> severity --[sThld]--> {1, 0}
//
// Each detector consumes one point at a time and emits a non-negative
// severity measuring how anomalous that point looks from the detector's own
// perspective. Opprentice never applies the sThld itself: severities are the
// features of its random forest. All detectors are online (§4.3.2): a point's
// severity is computed without waiting for any subsequent data, and
// detectors that need history report ready=false during their warm-up
// window, whose points are skipped for detection.
package detectors

import (
	"fmt"
	"math"
)

// Detector is a streaming severity extractor. Implementations are not safe
// for concurrent use; run one instance per goroutine.
type Detector interface {
	// Name identifies the detector configuration, e.g. "ewma(alpha=0.3)".
	Name() string
	// Step consumes the next data point and returns its severity.
	// ready is false while the detector warms up; the severity is then
	// meaningless and callers should treat the feature as absent.
	Step(v float64) (severity float64, ready bool)
	// Reset returns the detector to its initial, unwarmed state.
	Reset()
}

// Trainable is implemented by detectors whose parameters are estimated from
// historical data rather than swept (§4.3.3) — ARIMA in this repo. Fit may
// be called again later to refresh the estimates as data characteristics
// drift.
type Trainable interface {
	Detector
	Fit(history []float64) error
}

// eps keeps deviation-over-spread severities finite on constant data.
const eps = 1e-9

// ring is a fixed-capacity FIFO over float64 used by the windowed detectors.
type ring struct {
	buf  []float64
	pos  int
	full bool
}

func newRing(n int) *ring {
	if n <= 0 {
		panic(fmt.Sprintf("detectors: ring size %d", n))
	}
	return &ring{buf: make([]float64, n)}
}

// push appends v, evicting the oldest value once full.
func (r *ring) push(v float64) {
	r.buf[r.pos] = v
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
		r.full = true
	}
}

// len returns the number of stored values.
func (r *ring) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.pos
}

// oldest returns the value about to be evicted. Only valid when full.
func (r *ring) oldest() float64 { return r.buf[r.pos] }

// values appends the stored values (in unspecified order) to dst and
// returns it.
func (r *ring) values(dst []float64) []float64 {
	if r.full {
		return append(dst, r.buf...)
	}
	return append(dst, r.buf[:r.pos]...)
}

// reset clears the ring.
func (r *ring) reset() {
	r.pos, r.full = 0, false
}

// meanStd returns the mean and population standard deviation of the stored
// values.
func (r *ring) meanStd() (mean, std float64) {
	n := r.len()
	if n == 0 {
		return 0, 0
	}
	vals := r.buf[:n]
	if r.full {
		vals = r.buf
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(n))
}
