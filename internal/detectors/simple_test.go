package detectors

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimpleThreshold(t *testing.T) {
	d := NewSimpleThreshold()
	if sev, ready := d.Step(42); !ready || sev != 42 {
		t.Errorf("Step(42) = %v, %v", sev, ready)
	}
	if sev, _ := d.Step(-3); sev != 0 {
		t.Errorf("negative values clamp to 0, got %v", sev)
	}
	d.Reset() // must not panic
}

func TestDiffLags(t *testing.T) {
	d := NewDiff("last-slot", 1)
	if _, ready := d.Step(10); ready {
		t.Error("first point should not be ready")
	}
	if sev, ready := d.Step(13); !ready || sev != 3 {
		t.Errorf("Step = %v, %v; want 3, true", sev, ready)
	}
	if sev, _ := d.Step(13); sev != 0 {
		t.Errorf("identical consecutive points: sev = %v", sev)
	}
}

func TestDiffLongLag(t *testing.T) {
	d := NewDiff("last-day", 4)
	vals := []float64{1, 2, 3, 4, 11, 22}
	var sevs []float64
	var readies []bool
	for _, v := range vals {
		s, r := d.Step(v)
		sevs = append(sevs, s)
		readies = append(readies, r)
	}
	for i := 0; i < 4; i++ {
		if readies[i] {
			t.Errorf("point %d should be warming up", i)
		}
	}
	if !readies[4] || sevs[4] != 10 {
		t.Errorf("point 4: sev=%v ready=%v, want 10,true", sevs[4], readies[4])
	}
	if sevs[5] != 20 {
		t.Errorf("point 5: sev=%v, want 20", sevs[5])
	}
}

func TestDiffPanicsOnBadLag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewDiff("x", 0)
}

func TestSimpleMA(t *testing.T) {
	d := NewSimpleMA(3)
	for i, v := range []float64{1, 2, 3} {
		if _, ready := d.Step(v); ready {
			t.Errorf("point %d should be warming up", i)
		}
	}
	// mean(1,2,3) = 2; |10-2| = 8.
	if sev, ready := d.Step(10); !ready || sev != 8 {
		t.Errorf("Step(10) = %v, %v; want 8, true", sev, ready)
	}
	// Window is now (2,3,10), mean = 5; |5-5| = 0.
	if sev, _ := d.Step(5); sev != 0 {
		t.Errorf("Step(5) = %v, want 0", sev)
	}
}

func TestWeightedMAWeightsRecent(t *testing.T) {
	d := NewWeightedMA(2)
	d.Step(0)
	d.Step(10)
	// Weighted mean with weights 1 (old=0), 2 (new=10) = 20/3.
	sev, ready := d.Step(0)
	if !ready || math.Abs(sev-20.0/3) > 1e-12 {
		t.Errorf("sev = %v, want 20/3", sev)
	}
}

func TestWeightedMAOrderIndependentOfRingWrap(t *testing.T) {
	// After the ring wraps several times the oldest→newest ordering must
	// still hold: feed a trend and check the prediction lags below the next
	// value (weighted mean of an increasing window < next point).
	d := NewWeightedMA(3)
	var sev float64
	var ready bool
	for i := 0; i < 10; i++ {
		sev, ready = d.Step(float64(i))
	}
	// Window before point 9 was (6,7,8): weighted mean = (6+14+24)/6 = 44/6.
	if !ready || math.Abs(sev-(9-44.0/6)) > 1e-12 {
		t.Errorf("sev = %v, want %v", sev, 9-44.0/6)
	}
}

func TestMAOfDiffDetectsJitter(t *testing.T) {
	d := NewMAOfDiff(3)
	// Smooth ramp first: diffs are all 1.
	var sev float64
	var ready bool
	for i := 0; i < 6; i++ {
		sev, ready = d.Step(float64(i))
	}
	if !ready || math.Abs(sev-1) > 1e-12 {
		t.Errorf("smooth ramp: sev = %v, want 1", sev)
	}
	// Jitter: alternate ±10. Diffs jump to ~15 on average.
	for i := 0; i < 6; i++ {
		sev, _ = d.Step(float64(i%2) * 20)
	}
	if sev < 5 {
		t.Errorf("jitter severity %v should be large", sev)
	}
}

func TestMAOfDiffWarmUp(t *testing.T) {
	d := NewMAOfDiff(2)
	if _, ready := d.Step(1); ready {
		t.Error("first point ready")
	}
	if _, ready := d.Step(2); ready {
		t.Error("second point ready (only 1 diff)")
	}
	if _, ready := d.Step(3); !ready {
		t.Error("third point should be ready (2 diffs)")
	}
}

func TestEWMADetector(t *testing.T) {
	d := NewEWMA(0.5)
	if _, ready := d.Step(10); ready {
		t.Error("first point should not be ready")
	}
	// Prediction is 10; |20-10| = 10.
	if sev, ready := d.Step(20); !ready || sev != 10 {
		t.Errorf("sev = %v, ready = %v", sev, ready)
	}
	// State is now 15; |15-15| = 0.
	if sev, _ := d.Step(15); sev != 0 {
		t.Errorf("sev = %v, want 0", sev)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewEWMA(1.5)
}

func TestEWMAAlphaControlsMemory(t *testing.T) {
	// High alpha adapts fast: after a level shift, severity should decay
	// faster than with low alpha.
	fast, slow := NewEWMA(0.9), NewEWMA(0.1)
	for i := 0; i < 50; i++ {
		fast.Step(0)
		slow.Step(0)
	}
	var fs, ss float64
	for i := 0; i < 5; i++ {
		fs, _ = fast.Step(100)
		ss, _ = slow.Step(100)
	}
	if fs >= ss {
		t.Errorf("after shift, fast ewma severity %v should be below slow %v", fs, ss)
	}
}

func TestResetsRestoreWarmUp(t *testing.T) {
	detectors := []Detector{
		NewDiff("last-slot", 2),
		NewSimpleMA(3),
		NewWeightedMA(3),
		NewMAOfDiff(3),
		NewEWMA(0.5),
	}
	rng := rand.New(rand.NewSource(1))
	for _, d := range detectors {
		for i := 0; i < 20; i++ {
			d.Step(rng.Float64())
		}
		d.Reset()
		if _, ready := d.Step(1); ready {
			t.Errorf("%s: ready right after Reset", d.Name())
		}
	}
}

func TestSeveritiesNonNegative(t *testing.T) {
	detectors := []Detector{
		NewSimpleThreshold(),
		NewDiff("last-slot", 1),
		NewSimpleMA(5),
		NewWeightedMA(5),
		NewMAOfDiff(5),
		NewEWMA(0.3),
	}
	rng := rand.New(rand.NewSource(2))
	for _, d := range detectors {
		for i := 0; i < 200; i++ {
			sev, _ := d.Step(rng.NormFloat64() * 100)
			if sev < 0 || math.IsNaN(sev) {
				t.Fatalf("%s: severity %v at point %d", d.Name(), sev, i)
			}
		}
	}
}
