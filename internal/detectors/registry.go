package detectors

import (
	"fmt"
	"time"

	"opprentice/internal/timeseries"
	"opprentice/internal/wavelet"
)

// Spec summarizes one detector family of Table 3 for documentation and the
// T3 experiment.
type Spec struct {
	Detector string
	Params   string
	Configs  int
}

// Table3 returns the detector/parameter inventory exactly as Table 3 of the
// paper lists it.
func Table3() []Spec {
	return []Spec{
		{"Simple threshold", "none", 1},
		{"Diff", "last-slot, last-day, last-week", 3},
		{"Simple MA", "win = 10, 20, 30, 40, 50 points", 5},
		{"Weighted MA", "win = 10, 20, 30, 40, 50 points", 5},
		{"MA of diff", "win = 10, 20, 30, 40, 50 points", 5},
		{"EWMA", "alpha = 0.1, 0.3, 0.5, 0.7, 0.9", 5},
		{"TSD", "win = 1, 2, 3, 4, 5 week(s)", 5},
		{"TSD MAD", "win = 1, 2, 3, 4, 5 week(s)", 5},
		{"Historical average", "win = 1, 2, 3, 4, 5 week(s)", 5},
		{"Historical MAD", "win = 1, 2, 3, 4, 5 week(s)", 5},
		{"Holt-Winters", "alpha, beta, gamma = 0.2, 0.4, 0.6, 0.8", 64},
		{"SVD", "row = 10, 20, 30, 40, 50 points, column = 3, 5, 7", 15},
		{"Wavelet", "win = 3, 5, 7 days, freq = low, mid, high", 9},
		{"ARIMA", "estimation from data", 1},
	}
}

// NumConfigurations is the total number of detector configurations in the
// default registry — the paper's 133 features.
const NumConfigurations = 133

// Registry builds one Detector per Table-3 configuration for a series with
// the given sampling interval. Seasonal detectors derive their periods from
// the interval, so it must divide a day evenly. The order of the returned
// slice is fixed and matches Table 3 top to bottom; it defines the feature
// indices of the machine-learning stage.
func Registry(interval time.Duration) ([]Detector, error) {
	if interval <= 0 || timeseries.Day%interval != 0 {
		return nil, fmt.Errorf("detectors: interval %v does not divide a day", interval)
	}
	ppd := int(timeseries.Day / interval)
	ppw := 7 * ppd

	var ds []Detector
	ds = append(ds, NewSimpleThreshold())
	ds = append(ds,
		NewDiff("last-slot", 1),
		NewDiff("last-day", ppd),
		NewDiff("last-week", ppw),
	)
	wins := []int{10, 20, 30, 40, 50}
	for _, w := range wins {
		ds = append(ds, NewSimpleMA(w))
	}
	for _, w := range wins {
		ds = append(ds, NewWeightedMA(w))
	}
	for _, w := range wins {
		ds = append(ds, NewMAOfDiff(w))
	}
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		ds = append(ds, NewEWMA(a))
	}
	for w := 1; w <= 5; w++ {
		ds = append(ds, NewTSD(w, ppw, ppd))
	}
	for w := 1; w <= 5; w++ {
		ds = append(ds, NewTSDMAD(w, ppw, ppd))
	}
	for w := 1; w <= 5; w++ {
		ds = append(ds, NewHistoricalAverage(w, ppd))
	}
	for w := 1; w <= 5; w++ {
		ds = append(ds, NewHistoricalMAD(w, ppd))
	}
	params := []float64{0.2, 0.4, 0.6, 0.8}
	for _, a := range params {
		for _, b := range params {
			for _, g := range params {
				ds = append(ds, NewHoltWinters(a, b, g, ppd))
			}
		}
	}
	for _, rows := range []int{10, 20, 30, 40, 50} {
		for _, cols := range []int{3, 5, 7} {
			ds = append(ds, NewSVD(rows, cols))
		}
	}
	for _, winDays := range []int{3, 5, 7} {
		for _, band := range []wavelet.Band{wavelet.Low, wavelet.Mid, wavelet.High} {
			ds = append(ds, NewWavelet(winDays, band, ppd))
		}
	}
	ds = append(ds, NewARIMA(2, 1, 2))

	if len(ds) != NumConfigurations {
		panic(fmt.Sprintf("detectors: registry built %d configurations, want %d", len(ds), NumConfigurations))
	}
	return ds, nil
}

// Names returns the configuration names of a detector slice, in order.
func Names(ds []Detector) []string {
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name()
	}
	return names
}
