package detectors

import (
	"fmt"
	"math"
)

// SimpleThreshold is the static-threshold detector (Amazon CloudWatch
// style [24]): the severity of a point is its own magnitude, so a fixed
// sThld on it is exactly a static alarm threshold. It is direction-blind by
// design — it ranks first for count-style KPIs whose anomalies are large
// values (#SR in the paper) and poorly elsewhere, which is precisely the
// behaviour Fig. 9 reports.
type SimpleThreshold struct{}

// NewSimpleThreshold returns the single Table-3 configuration.
func NewSimpleThreshold() *SimpleThreshold { return &SimpleThreshold{} }

// Name implements Detector.
func (*SimpleThreshold) Name() string { return "simple_threshold" }

// Step implements Detector: severity is the value itself, clamped at 0.
func (*SimpleThreshold) Step(v float64) (float64, bool) {
	return math.Max(v, 0), true
}

// Reset implements Detector.
func (*SimpleThreshold) Reset() {}

// Diff measures the absolute difference between the current point and the
// point lag slots earlier — the search engine's own "Diff" detector with
// variants last-slot, last-day and last-week.
type Diff struct {
	label string
	lag   int
	hist  *ring
}

// NewDiff returns a Diff detector with the given lag in points and a label
// ("last-slot", "last-day", "last-week") for the configuration name.
func NewDiff(label string, lag int) *Diff {
	if lag < 1 {
		panic(fmt.Sprintf("detectors: diff lag %d", lag))
	}
	return &Diff{label: label, lag: lag, hist: newRing(lag)}
}

// Name implements Detector.
func (d *Diff) Name() string { return fmt.Sprintf("diff(%s)", d.label) }

// Step implements Detector.
func (d *Diff) Step(v float64) (float64, bool) {
	ready := d.hist.full
	sev := 0.0
	if ready {
		sev = math.Abs(v - d.hist.oldest())
	}
	d.hist.push(v)
	return sev, ready
}

// Reset implements Detector.
func (d *Diff) Reset() { d.hist.reset() }

// SimpleMA predicts each point as the plain average of the previous win
// points and reports the absolute residual as severity [4].
type SimpleMA struct {
	win  int
	hist *ring
	sum  float64
}

// NewSimpleMA returns a simple moving-average detector with the given
// window in points.
func NewSimpleMA(win int) *SimpleMA {
	return &SimpleMA{win: win, hist: newRing(win)}
}

// Name implements Detector.
func (d *SimpleMA) Name() string { return fmt.Sprintf("simple_ma(win=%d)", d.win) }

// Step implements Detector.
func (d *SimpleMA) Step(v float64) (float64, bool) {
	ready := d.hist.full
	sev := 0.0
	if ready {
		sev = math.Abs(v - d.sum/float64(d.win))
		d.sum -= d.hist.oldest()
	}
	d.hist.push(v)
	d.sum += v
	return sev, ready
}

// Reset implements Detector.
func (d *SimpleMA) Reset() {
	d.hist.reset()
	d.sum = 0
}

// WeightedMA is SimpleMA with linearly decaying weights: the most recent of
// the win previous points weighs win, the oldest weighs 1 [11].
type WeightedMA struct {
	win  int
	hist *ring
}

// NewWeightedMA returns a weighted moving-average detector.
func NewWeightedMA(win int) *WeightedMA {
	return &WeightedMA{win: win, hist: newRing(win)}
}

// Name implements Detector.
func (d *WeightedMA) Name() string { return fmt.Sprintf("weighted_ma(win=%d)", d.win) }

// Step implements Detector.
func (d *WeightedMA) Step(v float64) (float64, bool) {
	ready := d.hist.full
	sev := 0.0
	if ready {
		// Oldest stored value is at hist.pos; iterate oldest→newest with
		// weights 1..win.
		num, den := 0.0, 0.0
		for k := 0; k < d.win; k++ {
			w := float64(k + 1)
			num += w * d.hist.buf[(d.hist.pos+k)%d.win]
			den += w
		}
		sev = math.Abs(v - num/den)
	}
	d.hist.push(v)
	return sev, ready
}

// Reset implements Detector.
func (d *WeightedMA) Reset() { d.hist.reset() }

// MAOfDiff averages the last-slot differences over a window — the search
// engine's detector for discovering continuous jitters.
type MAOfDiff struct {
	win   int
	diffs *ring
	sum   float64
	prev  float64
	seen  bool
}

// NewMAOfDiff returns an MA-of-diff detector with the given window.
func NewMAOfDiff(win int) *MAOfDiff {
	return &MAOfDiff{win: win, diffs: newRing(win)}
}

// Name implements Detector.
func (d *MAOfDiff) Name() string { return fmt.Sprintf("ma_of_diff(win=%d)", d.win) }

// Step implements Detector.
func (d *MAOfDiff) Step(v float64) (float64, bool) {
	if !d.seen {
		d.prev, d.seen = v, true
		return 0, false
	}
	diff := math.Abs(v - d.prev)
	d.prev = v
	if d.diffs.full {
		d.sum -= d.diffs.oldest()
	}
	d.diffs.push(diff)
	d.sum += diff
	if !d.diffs.full {
		return 0, false
	}
	return d.sum / float64(d.win), true
}

// Reset implements Detector.
func (d *MAOfDiff) Reset() {
	d.diffs.reset()
	d.sum, d.prev, d.seen = 0, 0, false
}

// EWMADetector predicts each point with an exponentially weighted moving
// average of the past and reports the absolute residual [11]. Larger alpha
// trusts recent data more.
type EWMADetector struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA detector with weight alpha ∈ [0, 1].
func NewEWMA(alpha float64) *EWMADetector {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("detectors: ewma alpha %v", alpha))
	}
	return &EWMADetector{alpha: alpha}
}

// Name implements Detector.
func (d *EWMADetector) Name() string { return fmt.Sprintf("ewma(alpha=%.1f)", d.alpha) }

// Step implements Detector.
func (d *EWMADetector) Step(v float64) (float64, bool) {
	if !d.seen {
		d.value, d.seen = v, true
		return 0, false
	}
	sev := math.Abs(v - d.value)
	d.value = d.alpha*v + (1-d.alpha)*d.value
	return sev, true
}

// Reset implements Detector.
func (d *EWMADetector) Reset() { d.value, d.seen = 0, false }
