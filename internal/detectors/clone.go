package detectors

// Cloner is implemented by detectors whose full streaming state can be
// deep-copied. Clone returns an independent detector positioned exactly where
// the receiver is: stepping the clone and the original with the same inputs
// yields bit-identical severities, and neither shares mutable state with the
// other.
//
// Cloning is what makes incremental feature extraction possible (§7: feature
// extraction "computed incrementally for new data only"): after extracting a
// configuration's severity column over a series prefix, the extractor
// checkpoints a clone, and the next extraction resumes from the checkpoint
// instead of replaying the whole history. Every detector in the default
// registry implements Cloner; a custom detector that does not is simply
// re-extracted cold each round (correct, just not O(Δ)).
type Cloner interface {
	Detector
	Clone() Detector
}

// cloneRing deep-copies a ring; nil stays nil.
func cloneRing(r *ring) *ring {
	if r == nil {
		return nil
	}
	return &ring{
		buf:  append([]float64(nil), r.buf...),
		pos:  r.pos,
		full: r.full,
	}
}

// clone deep-copies a phase history.
func (ph *phaseHistory) clone() *phaseHistory {
	if ph == nil {
		return nil
	}
	c := &phaseHistory{period: ph.period, depth: ph.depth, t: ph.t}
	c.rings = make([]*ring, len(ph.rings))
	for i, r := range ph.rings {
		c.rings[i] = cloneRing(r)
	}
	return c
}

// Clone implements Cloner. SimpleThreshold is stateless.
func (*SimpleThreshold) Clone() Detector { return &SimpleThreshold{} }

// Clone implements Cloner.
func (d *Diff) Clone() Detector {
	return &Diff{label: d.label, lag: d.lag, hist: cloneRing(d.hist)}
}

// Clone implements Cloner.
func (d *SimpleMA) Clone() Detector {
	return &SimpleMA{win: d.win, hist: cloneRing(d.hist), sum: d.sum}
}

// Clone implements Cloner.
func (d *WeightedMA) Clone() Detector {
	return &WeightedMA{win: d.win, hist: cloneRing(d.hist)}
}

// Clone implements Cloner.
func (d *MAOfDiff) Clone() Detector {
	return &MAOfDiff{win: d.win, diffs: cloneRing(d.diffs), sum: d.sum, prev: d.prev, seen: d.seen}
}

// Clone implements Cloner.
func (d *EWMADetector) Clone() Detector {
	c := *d
	return &c
}

// Clone implements Cloner.
func (d *CUSUM) Clone() Detector {
	c := *d
	return &c
}

// Clone implements Cloner.
func (d *RateOfChange) Clone() Detector {
	c := *d
	return &c
}

// Clone implements Cloner.
func (d *HistoricalAverage) Clone() Detector {
	return &HistoricalAverage{
		winWeeks: d.winWeeks,
		ppd:      d.ppd,
		ph:       d.ph.clone(),
		// scratch is overwritten before every use; a fresh buffer is state-free.
	}
}

// Clone implements Cloner.
func (d *HistoricalMAD) Clone() Detector {
	return &HistoricalMAD{winWeeks: d.winWeeks, ph: d.ph.clone()}
}

// Clone implements Cloner.
func (d *TSD) Clone() Detector {
	return &TSD{
		winWeeks: d.winWeeks,
		ph:       d.ph.clone(),
		resid:    cloneRing(d.resid),
		sum:      d.sum,
		ssq:      d.ssq,
	}
}

// Clone implements Cloner.
func (d *TSDMAD) Clone() Detector {
	return &TSDMAD{winWeeks: d.winWeeks, ph: d.ph.clone(), resid: cloneRing(d.resid)}
}

// Clone implements Cloner.
func (d *HoltWinters) Clone() Detector {
	c := *d
	c.season = append([]float64(nil), d.season...)
	c.warm = append([]float64(nil), d.warm...)
	return &c
}

// Clone implements Cloner. The history ring and the warm-started power
// iteration direction (v1, warm) are streaming state; the remaining slices
// are per-Step scratch fully overwritten before use, so the clone gets fresh
// zeroed buffers.
func (d *SVDDetector) Clone() Detector {
	c := NewSVD(d.rows, d.cols)
	c.hist = cloneRing(d.hist)
	copy(c.v1, d.v1)
	c.warm = d.warm
	return c
}

// Clone implements Cloner.
func (d *WaveletDetector) Clone() Detector {
	c := *d
	c.mra = d.mra.Clone()
	return &c
}

// Clone implements Cloner. The fitted model is immutable after Fit and is
// shared; the streaming forecaster state is deep-copied. Refitting the clone
// replaces its model pointer without disturbing the original.
func (d *ARIMADetector) Clone() Detector {
	c := &ARIMADetector{maxP: d.maxP, maxD: d.maxD, maxQ: d.maxQ, model: d.model}
	if d.fc != nil {
		c.fc = d.fc.Clone()
	}
	return c
}

// CloneAll clones every detector in ds, reporting ok=false (and a nil slice)
// if any detector does not implement Cloner.
func CloneAll(ds []Detector) ([]Detector, bool) {
	out := make([]Detector, len(ds))
	for i, d := range ds {
		c, ok := d.(Cloner)
		if !ok {
			return nil, false
		}
		out[i] = c.Clone()
	}
	return out, true
}

// Compile-time proof that every registry detector family supports
// checkpointing.
var (
	_ Cloner = (*SimpleThreshold)(nil)
	_ Cloner = (*Diff)(nil)
	_ Cloner = (*SimpleMA)(nil)
	_ Cloner = (*WeightedMA)(nil)
	_ Cloner = (*MAOfDiff)(nil)
	_ Cloner = (*EWMADetector)(nil)
	_ Cloner = (*CUSUM)(nil)
	_ Cloner = (*RateOfChange)(nil)
	_ Cloner = (*HistoricalAverage)(nil)
	_ Cloner = (*HistoricalMAD)(nil)
	_ Cloner = (*TSD)(nil)
	_ Cloner = (*TSDMAD)(nil)
	_ Cloner = (*HoltWinters)(nil)
	_ Cloner = (*SVDDetector)(nil)
	_ Cloner = (*WaveletDetector)(nil)
	_ Cloner = (*ARIMADetector)(nil)
)
