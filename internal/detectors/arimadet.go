package detectors

import (
	"errors"

	"opprentice/internal/arima"
)

// ARIMADetector wraps an ARIMA model as a basic detector [10]. Following
// §4.3.3, its parameters are not swept: Fit estimates the order and
// coefficients from historical data (auto-ARIMA by AIC), producing Table 3's
// single configuration. Severity is the absolute one-step forecast residual.
// Until Fit is called the detector reports not-ready.
type ARIMADetector struct {
	maxP, maxD, maxQ int
	model            *arima.Model
	fc               *arima.Forecaster
}

// NewARIMA returns an untrained ARIMA detector with the given order-search
// bounds.
func NewARIMA(maxP, maxD, maxQ int) *ARIMADetector {
	return &ARIMADetector{maxP: maxP, maxD: maxD, maxQ: maxQ}
}

// Name implements Detector.
func (d *ARIMADetector) Name() string { return "arima(auto)" }

// ErrUntrained is returned by Fit when the history is too short to estimate
// any model.
var ErrUntrained = errors.New("detectors: arima has no usable history")

// Fit implements Trainable: it estimates the model order and coefficients
// from history and restarts the forecaster. Refitting periodically keeps the
// estimates current as the data drifts (§4.3.3).
func (d *ARIMADetector) Fit(history []float64) error {
	m, err := arima.FitAuto(history, d.maxP, d.maxD, d.maxQ)
	if err != nil {
		return err
	}
	d.model = m
	d.fc = arima.NewForecaster(m)
	// Warm the forecaster on the tail of the history so detection can
	// continue seamlessly from the next point.
	warm := 4 * (m.P + m.D + m.Q + 1)
	if warm > len(history) {
		warm = len(history)
	}
	for _, v := range history[len(history)-warm:] {
		d.fc.Step(v)
	}
	return nil
}

// Model returns the fitted model, or nil before Fit succeeds.
func (d *ARIMADetector) Model() *arima.Model { return d.model }

// Step implements Detector.
func (d *ARIMADetector) Step(v float64) (float64, bool) {
	if d.fc == nil {
		return 0, false
	}
	forecast, ready := d.fc.Step(v)
	if !ready {
		return 0, false
	}
	sev := v - forecast
	if sev < 0 {
		sev = -sev
	}
	return sev, true
}

// Reset implements Detector: it clears the forecaster state but keeps the
// fitted model.
func (d *ARIMADetector) Reset() {
	if d.fc != nil {
		d.fc.Reset()
	}
}
