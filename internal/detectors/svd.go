package detectors

import (
	"fmt"
	"math"
)

// SVDDetector implements the singular-value-decomposition detector [7] as a
// subspace method: the previous rows×cols points (excluding the incoming
// one) are arranged column-wise into a rows×cols history matrix whose
// dominant singular direction captures the locally repeating temporal
// shape. The most recent rows points — ending at the incoming value — form
// a test vector that is projected onto that normal subspace; the severity is
// the magnitude of the incoming point's component left outside it. Learning
// the subspace strictly from history keeps a single spike from hijacking the
// dominant direction. Table 3 sweeps rows ∈ {10..50} and cols ∈ {3, 5, 7},
// 15 configurations.
//
// The dominant singular pair is obtained by power iteration on the
// cols×cols Gram matrix (algebraically identical to the top SVD component),
// keeping the per-point cost at O(rows·cols²) — small enough for the online
// requirement of §4.3.2.
type SVDDetector struct {
	rows, cols int
	hist       *ring
	window     []float64 // history scratch, chronological
	test       []float64 // test vector scratch
	gram       []float64 // cols×cols scratch
	v1         []float64 // top right singular vector; warm-started across steps
	u1         []float64 // top left singular vector scratch
	tmp        []float64 // power-iteration scratch
	// warm records that v1 holds the previous step's converged direction.
	// The history matrix shifts by one point per step, so its dominant
	// direction moves slowly; seeding the power iteration from the previous
	// answer converges in 1–2 iterations instead of ~30. v1 is then
	// streaming state — a deterministic function of the input stream — so
	// Clone copies it and Reset clears it, preserving replay bit-identity.
	warm bool
}

// NewSVD returns an SVD detector with the given matrix shape.
func NewSVD(rows, cols int) *SVDDetector {
	if rows < 2 || cols < 2 {
		panic(fmt.Sprintf("detectors: svd shape %d×%d", rows, cols))
	}
	return &SVDDetector{
		rows: rows, cols: cols,
		hist:   newRing(rows * cols),
		window: make([]float64, rows*cols),
		test:   make([]float64, rows),
		gram:   make([]float64, cols*cols),
		v1:     make([]float64, cols),
		u1:     make([]float64, rows),
		tmp:    make([]float64, cols),
	}
}

// Name implements Detector.
func (d *SVDDetector) Name() string {
	return fmt.Sprintf("svd(row=%d,col=%d)", d.rows, d.cols)
}

// Step implements Detector.
func (d *SVDDetector) Step(v float64) (float64, bool) {
	if !d.hist.full {
		d.hist.push(v)
		return 0, false
	}
	// History window in chronological order; oldest value sits at hist.pos.
	// Two straight copies instead of a per-element modulo walk.
	n := copy(d.window, d.hist.buf[d.hist.pos:])
	copy(d.window[n:], d.hist.buf[:d.hist.pos])
	n = d.rows * d.cols
	// Test vector: the latest rows-1 history points followed by v.
	copy(d.test, d.window[n-(d.rows-1):])
	d.test[d.rows-1] = v

	sev := d.subspaceResidual()
	d.hist.push(v)
	return sev, true
}

// subspaceResidual learns the dominant direction of the history matrix and
// returns |last element of (test - projection onto that direction)|.
func (d *SVDDetector) subspaceResidual() float64 {
	rows, cols := d.rows, d.cols
	col := func(j int) []float64 { return d.window[j*rows : (j+1)*rows] }

	// Gram matrix G = XᵀX (cols×cols).
	for a := 0; a < cols; a++ {
		ca := col(a)
		for b := a; b < cols; b++ {
			cb := col(b)
			s := 0.0
			for i := 0; i < rows; i++ {
				s += ca[i] * cb[i]
			}
			d.gram[a*cols+b] = s
			d.gram[b*cols+a] = s
		}
	}
	// Power iteration for the dominant eigenvector v1 of G, warm-started
	// from the previous step's direction when it is usable.
	if !d.warm || !finiteVec(d.v1) {
		for j := range d.v1 {
			d.v1[j] = 1 / math.Sqrt(float64(cols))
		}
	}
	d.warm = true
	for iter := 0; iter < 30; iter++ {
		norm := 0.0
		for a := 0; a < cols; a++ {
			s := 0.0
			for b := 0; b < cols; b++ {
				s += d.gram[a*cols+b] * d.v1[b]
			}
			d.tmp[a] = s
			norm += s * s
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			// All-zero history: the whole test point is residual.
			return math.Abs(d.test[rows-1])
		}
		delta := 0.0
		for a := 0; a < cols; a++ {
			nv := d.tmp[a] / norm
			delta += math.Abs(nv - d.v1[a])
			d.v1[a] = nv
		}
		if delta < 1e-10 {
			break
		}
	}
	// u1 = X v1, normalized: the dominant temporal shape.
	uNorm := 0.0
	for i := 0; i < rows; i++ {
		s := 0.0
		for j := 0; j < cols; j++ {
			s += col(j)[i] * d.v1[j]
		}
		d.u1[i] = s
		uNorm += s * s
	}
	uNorm = math.Sqrt(uNorm)
	if uNorm == 0 {
		return math.Abs(d.test[rows-1])
	}
	// Residual of the test vector outside span(u1), at its last element.
	dot := 0.0
	for i := 0; i < rows; i++ {
		dot += d.u1[i] / uNorm * d.test[i]
	}
	approx := dot * d.u1[rows-1] / uNorm
	return math.Abs(d.test[rows-1] - approx)
}

// Reset implements Detector.
func (d *SVDDetector) Reset() {
	d.hist.reset()
	d.warm = false
}

// finiteVec reports whether every element of xs is finite.
func finiteVec(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
