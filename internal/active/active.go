// Package active is the label-efficiency subsystem: uncertainty sampling and
// concept-drift detection over the forest's streaming vote fractions.
//
// Opprentice (§4.2) assumes operators label every anomaly window and the
// engine retrains on a fixed weekly tick. "Little Help Makes a Big
// Difference" (arXiv:2201.10323) shows uncertainty-driven querying reaches
// comparable accuracy from a fraction of the labels. This package provides
// the two per-series pieces the engine wires onto its ingest hot path:
//
//   - A bounded query queue of the windows the forest is least certain
//     about — points whose vote fraction falls within a configurable band
//     around the live cThld, deduplicated into candidate windows, with the
//     lowest-scoring window evicted when the queue is full so it always
//     holds the top-K most uncertain windows of the current retrain period.
//   - A drift detector comparing the live vote-fraction distribution
//     against a reference histogram captured right after (re)training,
//     using the Population Stability Index with hysteresis, so retrains
//     can fire when the forest's view of the data actually shifts instead
//     of waiting for the weekly tick.
//
// Both are built from fixed-size arrays sized at construction: Observe is
// allocation-free, preserving the engine's zero-alloc trained append pins.
// State is not internally synchronized — the engine calls it under the
// series' single-writer mutex.
package active

// Config tunes a per-series State. Zero values pick defaults; negative
// values disable the corresponding half (queries or drift) entirely.
type Config struct {
	// Band is the uncertainty half-width around the live cThld: a point
	// whose vote fraction p satisfies |p−cThld| ≤ Band is a query
	// candidate. Default 0.1; negative disables the query queue.
	Band float64
	// Depth is the queue capacity in windows (top-K retained). Default 8;
	// negative disables the query queue.
	Depth int
	// DriftThreshold is the PSI value one comparison window must meet or
	// exceed to count as a drift strike. Default 0.25 (the conventional
	// "significant shift" PSI level); negative disables drift detection.
	DriftThreshold float64
	// DriftWindow is how many trained verdicts fill one histogram window:
	// the first window after a (re)train becomes the reference, each
	// subsequent one is compared against it. Default 288 (one day at
	// 5-minute sampling); the engine overrides it with the series' actual
	// points-per-day. Values below MinDriftWindow are raised to it.
	DriftWindow int
	// Hysteresis is how many consecutive over-threshold windows are needed
	// before drift latches (default 2), so one noisy window cannot trigger
	// a retrain.
	Hysteresis int
}

// Defaults, exported so the engine and CLI flag help can state them.
const (
	DefaultBand           = 0.1
	DefaultDepth          = 8
	DefaultDriftThreshold = 0.25
	DefaultDriftWindow    = 288
	DefaultHysteresis     = 2
	// MinDriftWindow floors the histogram window: PSI over fewer points is
	// all smoothing noise.
	MinDriftWindow = 48
)

// withDefaults resolves the zero-means-default, negative-means-disabled
// convention the engine's Config uses throughout.
func (c Config) withDefaults() Config {
	if c.Band == 0 {
		c.Band = DefaultBand
	}
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = DefaultDriftThreshold
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = DefaultDriftWindow
	}
	if c.DriftWindow < MinDriftWindow {
		c.DriftWindow = MinDriftWindow
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	return c
}

// State is one series' active-learning state: query queue + drift detector.
// All methods must be called under the owning series' mutex.
type State struct {
	queue queue
	drift detector
}

// NewState builds a State for one series. It returns nil when cfg disables
// both the query queue and the drift detector, so callers can keep a single
// nil check on the hot path.
func NewState(cfg Config) *State {
	cfg = cfg.withDefaults()
	queries := cfg.Band > 0 && cfg.Depth > 0
	drifts := cfg.DriftThreshold > 0
	if !queries && !drifts {
		return nil
	}
	s := &State{}
	if queries {
		s.queue.init(cfg.Band, cfg.Depth)
	}
	if drifts {
		s.drift.init(cfg.DriftThreshold, cfg.DriftWindow, cfg.Hysteresis)
	}
	return s
}

// Observe feeds one trained verdict — the point's series index, its forest
// vote fraction, and the cThld applied — into both halves. Allocation-free.
func (s *State) Observe(index int, prob, cthld float64) {
	s.queue.observe(index, prob, cthld)
	s.drift.observe(prob)
}

// TakeDrift consumes the drift latch: it reports whether the detector has
// seen Hysteresis consecutive over-threshold windows since the last take,
// and clears the latch so one drift episode arms at most one retrain.
func (s *State) TakeDrift() bool { return s.drift.take() }

// DriftScore returns the PSI of the most recently completed comparison
// window (0 until the first one completes after a reference is captured).
func (s *State) DriftScore() float64 { return s.drift.score }

// Reset clears both halves for a new model generation: the queue empties
// (its windows were scored by the outgoing model) and the drift detector
// starts capturing a fresh reference. The engine calls it at every monitor
// swap — retrain, warm restore, and rollback alike.
func (s *State) Reset() {
	s.queue.reset()
	s.drift.reset()
}

// Window is one pending query: the half-open point-index range [Start, End)
// the forest is least certain about, its uncertainty score in (0, 1] (1 =
// vote fraction exactly at cThld), and how many in-band points it covers.
type Window struct {
	Start  int
	End    int
	Score  float64
	Points int
}

// Depth returns the number of pending query windows.
func (s *State) Depth() int { return len(s.queue.win) }

// Windows appends the pending query windows to buf, most uncertain first,
// and returns it. The result is a copy: it stays valid after the series
// mutex is released.
func (s *State) Windows(buf []Window) []Window { return s.queue.snapshot(buf) }

// Remove drops the pending query exactly matching [start, end) and reports
// whether it was present. An answered query must not be surfaced again.
func (s *State) Remove(start, end int) bool { return s.queue.remove(start, end) }
