package active

import (
	"math"
	"math/rand"
	"testing"
)

func queryState(t *testing.T, band float64, depth int) *State {
	t.Helper()
	s := NewState(Config{Band: band, Depth: depth, DriftThreshold: -1})
	if s == nil {
		t.Fatal("NewState returned nil with queries enabled")
	}
	return s
}

func TestNewStateDisabled(t *testing.T) {
	if s := NewState(Config{Band: -1, DriftThreshold: -1}); s != nil {
		t.Fatal("NewState with both halves disabled should return nil")
	}
	if s := NewState(Config{Band: -1, Depth: -1, DriftThreshold: 0.5}); s == nil {
		t.Fatal("drift-only State should not be nil")
	}
	if s := NewState(Config{}); s == nil {
		t.Fatal("all-defaults State should not be nil")
	}
}

func TestQueueBandFilter(t *testing.T) {
	s := queryState(t, 0.1, 4)
	s.Observe(0, 0.9, 0.5)  // far above: confident anomaly
	s.Observe(10, 0.1, 0.5) // far below: confident normal
	if s.Depth() != 0 {
		t.Fatalf("confident points queued: depth = %d", s.Depth())
	}
	s.Observe(20, 0.55, 0.5) // in band
	if s.Depth() != 1 {
		t.Fatalf("in-band point not queued: depth = %d", s.Depth())
	}
	w := s.Windows(nil)[0]
	if w.Start != 20 || w.End != 21 || w.Points != 1 {
		t.Fatalf("window = %+v, want [20,21) with 1 point", w)
	}
	if want := 0.5; math.Abs(w.Score-want) > 1e-9 {
		t.Fatalf("score = %v, want %v (1 - 0.05/0.1)", w.Score, want)
	}
}

func TestQueueMergesAdjacent(t *testing.T) {
	s := queryState(t, 0.1, 4)
	s.Observe(5, 0.52, 0.5)
	s.Observe(6, 0.50, 0.5) // adjacent, exactly at threshold
	s.Observe(8, 0.46, 0.5) // within mergeGap of end 7
	if s.Depth() != 1 {
		t.Fatalf("adjacent uncertain points split into %d windows, want 1", s.Depth())
	}
	w := s.Windows(nil)[0]
	if w.Start != 5 || w.End != 9 || w.Points != 3 {
		t.Fatalf("merged window = %+v, want [5,9) with 3 points", w)
	}
	if w.Score != 1 {
		t.Fatalf("merged score = %v, want the max (1)", w.Score)
	}
	s.Observe(50, 0.55, 0.5) // far away: a new window
	if s.Depth() != 2 {
		t.Fatalf("distant point merged: depth = %d, want 2", s.Depth())
	}
}

func TestQueueEvictsLowestScore(t *testing.T) {
	s := queryState(t, 0.1, 2)
	s.Observe(0, 0.59, 0.5)  // score 0.1: the weakest
	s.Observe(10, 0.52, 0.5) // score 0.8
	s.Observe(20, 0.51, 0.5) // score 0.9 → evicts the 0.1 window
	ws := s.Windows(nil)
	if len(ws) != 2 {
		t.Fatalf("depth = %d, want capacity 2", len(ws))
	}
	if ws[0].Start != 20 || ws[1].Start != 10 {
		t.Fatalf("kept windows %+v, want starts 20 (score .9) then 10 (score .8)", ws)
	}
	// A newcomer weaker than everything present never enters.
	s.Observe(30, 0.595, 0.5) // score 0.05
	ws = s.Windows(nil)
	if len(ws) != 2 || ws[0].Start != 20 || ws[1].Start != 10 {
		t.Fatalf("weak newcomer displaced a stronger window: %+v", ws)
	}
}

func TestQueueRemoveAndReset(t *testing.T) {
	s := queryState(t, 0.1, 4)
	s.Observe(0, 0.5, 0.5)
	s.Observe(10, 0.5, 0.5)
	if !s.Remove(0, 1) {
		t.Fatal("Remove of a pending window reported absent")
	}
	if s.Remove(0, 1) {
		t.Fatal("Remove of an already-removed window reported present")
	}
	if s.Remove(10, 12) {
		t.Fatal("Remove with a mismatched range reported present")
	}
	if s.Depth() != 1 {
		t.Fatalf("depth after remove = %d, want 1", s.Depth())
	}
	s.Reset()
	if s.Depth() != 0 {
		t.Fatalf("depth after reset = %d, want 0", s.Depth())
	}
}

// driftState builds a drift-only detector with a tiny window so tests can
// drive whole comparison windows cheaply.
func driftState(t *testing.T, threshold float64, window, hysteresis int) *State {
	t.Helper()
	s := NewState(Config{Band: -1, Depth: -1, DriftThreshold: threshold, DriftWindow: window, Hysteresis: hysteresis})
	if s == nil {
		t.Fatal("NewState returned nil with drift enabled")
	}
	return s
}

// feed streams n vote fractions drawn from rng via draw into the state.
func feed(s *State, n int, draw func() float64) {
	for i := 0; i < n; i++ {
		s.Observe(i, draw(), 0.5)
	}
}

func TestDriftStationaryNeverLatches(t *testing.T) {
	s := driftState(t, 0.25, MinDriftWindow, 2)
	rng := rand.New(rand.NewSource(7))
	// Reference + 20 live windows from the same distribution.
	feed(s, 21*MinDriftWindow, func() float64 { return 0.2 + 0.1*rng.Float64() })
	if s.TakeDrift() {
		t.Fatal("stationary stream latched drift")
	}
	if got := s.DriftScore(); got >= 0.25 {
		t.Fatalf("stationary PSI = %v, want < threshold", got)
	}
}

func TestDriftShiftLatchesWithHysteresis(t *testing.T) {
	s := driftState(t, 0.25, MinDriftWindow, 2)
	rng := rand.New(rand.NewSource(7))
	low := func() float64 { return 0.2 + 0.1*rng.Float64() }
	high := func() float64 { return 0.7 + 0.1*rng.Float64() }
	feed(s, MinDriftWindow, low) // reference
	feed(s, MinDriftWindow, high)
	if s.TakeDrift() {
		t.Fatal("one over-threshold window latched despite hysteresis 2")
	}
	feed(s, MinDriftWindow, high)
	if !s.TakeDrift() {
		t.Fatalf("two consecutive shifted windows did not latch (PSI %v)", s.DriftScore())
	}
	if s.TakeDrift() {
		t.Fatal("TakeDrift did not consume the latch")
	}
	if s.DriftScore() < 0.25 {
		t.Fatalf("shifted PSI = %v, want ≥ threshold", s.DriftScore())
	}
}

func TestDriftStrikeResetOnCalmWindow(t *testing.T) {
	s := driftState(t, 0.25, MinDriftWindow, 2)
	rng := rand.New(rand.NewSource(9))
	low := func() float64 { return 0.2 + 0.1*rng.Float64() }
	high := func() float64 { return 0.7 + 0.1*rng.Float64() }
	feed(s, MinDriftWindow, low)  // reference
	feed(s, MinDriftWindow, high) // strike 1
	feed(s, MinDriftWindow, low)  // calm: strike counter resets
	feed(s, MinDriftWindow, high) // strike 1 again
	if s.TakeDrift() {
		t.Fatal("non-consecutive strikes latched drift")
	}
}

func TestDriftResetStartsFreshReference(t *testing.T) {
	s := driftState(t, 0.25, MinDriftWindow, 1)
	rng := rand.New(rand.NewSource(11))
	low := func() float64 { return 0.2 + 0.1*rng.Float64() }
	high := func() float64 { return 0.7 + 0.1*rng.Float64() }
	feed(s, MinDriftWindow, low)
	feed(s, MinDriftWindow, high)
	if !s.TakeDrift() {
		t.Fatal("shift did not latch with hysteresis 1")
	}
	// After a reset (the retrain swap), the new regime becomes the
	// reference: continuing in it must not re-latch.
	s.Reset()
	if s.DriftScore() != 0 {
		t.Fatalf("score after reset = %v, want 0", s.DriftScore())
	}
	feed(s, 5*MinDriftWindow, high)
	if s.TakeDrift() {
		t.Fatal("post-reset stationary stream latched drift")
	}
}

// TestObserveZeroAllocs pins the hot-path contract: the engine calls Observe
// for every trained verdict inside its zero-alloc append path.
func TestObserveZeroAllocs(t *testing.T) {
	s := NewState(Config{DriftWindow: MinDriftWindow})
	rng := rand.New(rand.NewSource(3))
	probs := make([]float64, 4096)
	for i := range probs {
		probs[i] = rng.Float64()
	}
	idx := 0
	allocs := testing.AllocsPerRun(2000, func() {
		s.Observe(idx, probs[idx%len(probs)], 0.5)
		idx++
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v allocs/op, want exactly 0", allocs)
	}
}

func TestQueueDeterminism(t *testing.T) {
	run := func() []Window {
		s := NewState(Config{Band: 0.2, Depth: 4, DriftThreshold: -1})
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 2000; i++ {
			s.Observe(i, rng.Float64(), 0.5)
		}
		return s.Windows(nil)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("depths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("window %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
