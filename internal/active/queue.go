package active

import "sort"

// mergeGap is how close (in points) a new uncertain point must be to the
// queue's most recent window to extend it instead of opening a new one: a
// burst of near-threshold points separated by a point or two of confidence
// is one operator question, not several.
const mergeGap = 2

// queue is the bounded top-K store of uncertain windows. Windows are kept in
// start order (observation indices are strictly increasing, so only the last
// window can ever absorb a new point) in a slice preallocated to capacity:
// observe never allocates.
type queue struct {
	band float64
	cap  int
	win  []Window
}

func (q *queue) init(band float64, depth int) {
	q.band = band
	q.cap = depth
	q.win = make([]Window, 0, depth)
}

// observe considers one trained verdict for querying. Score is 1 at the
// threshold falling linearly to 0 at the band edge, so eviction keeps the
// windows whose points the forest was most torn about.
func (q *queue) observe(index int, prob, cthld float64) {
	if q.cap == 0 {
		return
	}
	d := prob - cthld
	if d < 0 {
		d = -d
	}
	if d > q.band {
		return
	}
	score := 1 - d/q.band
	if n := len(q.win); n > 0 && index <= q.win[n-1].End+mergeGap {
		w := &q.win[n-1]
		w.End = index + 1
		w.Points++
		if score > w.Score {
			w.Score = score
		}
		return
	}
	if len(q.win) == q.cap {
		// Evict the lowest-scoring window (oldest among ties) to keep the
		// top-K; if the newcomer itself scores lowest, it simply never
		// enters.
		lo := 0
		for i := 1; i < len(q.win); i++ {
			if q.win[i].Score < q.win[lo].Score {
				lo = i
			}
		}
		if q.win[lo].Score >= score {
			return
		}
		copy(q.win[lo:], q.win[lo+1:])
		q.win = q.win[:len(q.win)-1]
	}
	q.win = append(q.win, Window{Start: index, End: index + 1, Score: score, Points: 1})
}

// snapshot appends a copy of the pending windows to buf, most uncertain
// first (ties oldest first for stable operator ordering).
func (q *queue) snapshot(buf []Window) []Window {
	n := len(buf)
	buf = append(buf, q.win...)
	out := buf[n:]
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return buf
}

// remove drops the window exactly matching [start, end).
func (q *queue) remove(start, end int) bool {
	for i, w := range q.win {
		if w.Start == start && w.End == end {
			copy(q.win[i:], q.win[i+1:])
			q.win = q.win[:len(q.win)-1]
			return true
		}
	}
	return false
}

func (q *queue) reset() {
	if q.win != nil {
		q.win = q.win[:0]
	}
}
