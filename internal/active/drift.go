package active

import "math"

// driftBins is the vote-fraction histogram resolution. 20 equal bins over
// [0, 1] is the conventional PSI setup: fine enough to see the forest's
// vote mass move, coarse enough that a day-sized window fills the occupied
// bins.
const driftBins = 20

// smooth is the Laplace-style count added to every bin before computing
// PSI, so empty bins contribute a finite, bounded term instead of ±Inf.
const smooth = 0.5

// detector is a windowed-reference PSI drift detector over the stream of
// forest vote fractions. The first `window` trained verdicts after a reset
// build the reference histogram — the distribution the current model was
// effectively validated against — and every subsequent window of the same
// size is compared to it. PSI at or above the threshold is one strike;
// `hysteresis` consecutive strikes latch drift. Fixed arrays throughout:
// observe never allocates.
type detector struct {
	threshold  float64
	window     int
	hysteresis int

	ref     [driftBins]float64
	live    [driftBins]float64
	refN    int
	liveN   int
	haveRef bool

	score   float64
	strikes int
	latched bool
}

func (d *detector) init(threshold float64, window, hysteresis int) {
	d.threshold = threshold
	d.window = window
	d.hysteresis = hysteresis
}

func (d *detector) observe(prob float64) {
	if d.threshold == 0 {
		return
	}
	bin := int(prob * driftBins)
	if bin < 0 {
		bin = 0
	}
	if bin >= driftBins {
		bin = driftBins - 1
	}
	if !d.haveRef {
		d.ref[bin]++
		d.refN++
		if d.refN >= d.window {
			d.haveRef = true
		}
		return
	}
	d.live[bin]++
	d.liveN++
	if d.liveN < d.window {
		return
	}
	d.score = psi(&d.ref, d.refN, &d.live, d.liveN)
	if d.score >= d.threshold {
		d.strikes++
		if d.strikes >= d.hysteresis {
			d.latched = true
		}
	} else {
		d.strikes = 0
	}
	d.live = [driftBins]float64{}
	d.liveN = 0
}

func (d *detector) take() bool {
	if !d.latched {
		return false
	}
	d.latched = false
	d.strikes = 0
	return true
}

func (d *detector) reset() {
	d.ref = [driftBins]float64{}
	d.live = [driftBins]float64{}
	d.refN, d.liveN = 0, 0
	d.haveRef = false
	d.score = 0
	d.strikes = 0
	d.latched = false
}

// psi is the Population Stability Index between two count histograms:
// Σ (pᵢ−qᵢ)·ln(pᵢ/qᵢ) over smoothed bin frequencies. Symmetric, zero for
// identical distributions, and conventionally read as <0.1 stable,
// 0.1–0.25 drifting, ≥0.25 shifted.
func psi(ref *[driftBins]float64, refN int, live *[driftBins]float64, liveN int) float64 {
	rTot := float64(refN) + smooth*driftBins
	lTot := float64(liveN) + smooth*driftBins
	sum := 0.0
	for i := 0; i < driftBins; i++ {
		p := (ref[i] + smooth) / rTot
		q := (live[i] + smooth) / lTot
		sum += (q - p) * math.Log(q/p)
	}
	return sum
}
