// Package simtest is a deterministic end-to-end simulation harness for the
// whole Opprentice engine, in the spirit of FoundationDB-style simulation
// testing: a seeded scenario generator synthesizes multi-KPI traffic with
// ground-truth anomaly windows (kpigen), noisy operator labeling (labelsim),
// weekly retrain ticks on a virtual point-index clock, and a seeded fault
// schedule reusing internal/faultinject — detector panics, WAL corruption,
// torn artifact writes, crash+restore, model rollback — while a mirror model
// checks global invariants after every step:
//
//   - exactly one verdict per appended point, with contiguous indices,
//     across retrain, restore and rollback monitor swaps;
//   - WAL replay bit-identical to the mirror (values, labels, and the typed
//     anomaly-class channel), with strictly monotonic derived timestamps,
//     and corrupt logs quarantined rather than served;
//   - multi-kind manifests atomic: every artifact kind the current
//     generation names is on disk after a publish, the manifest and the live
//     monitor agree about the type head, and a torn secondary kind costs
//     only that kind (quarantined; the generation keeps serving verdicts
//     warm) while a torn verdict falls the whole generation back;
//   - incremental feature extraction bit-identical to a cold Extract
//     (core.FeatureCache.VerifyAgainstCold after every retrain);
//   - restore deterministic: two engines restored from identical disk state
//     produce bitwise-identical verdicts on identical traffic;
//   - the registry manifest always parseable with the current generation's
//     entry intact, and the live cThld agreeing with the manifest after
//     rollback and warm restore;
//   - alert delivery at-least-once with no duplicates beyond the retry
//     contract, across engine restarts;
//   - overload sheds atomic: a batch over the in-flight budget is rejected
//     with ErrOverloaded and zero points appended, and the next batch
//     passes;
//   - a stalled WAL writer flips the series degraded (threshold-only
//     advisory verdicts, bounded buffering, zero lost points) and the
//     hysteresis recovers it once the stall clears;
//   - the training watchdog abandons a wedged round as ErrStalled, retries
//     with backoff, quarantines at the failure limit, and a manual retrain
//     lifts the quarantine — with every resilience counter matching the
//     mirror's prediction.
//
// Every failure carries the scenario seed and a trailing step trace so
// `go test ./internal/simtest -run TestSimSeed -seed=N` reproduces it.
package simtest

import (
	"fmt"
	"math/rand"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/labelsim"
)

// FaultKind enumerates the injectable faults of a scenario's schedule.
type FaultKind int

// The fault kinds. DetectorPanic is a scenario-wide property (a panicking
// detector configuration rides along in every training round) rather than a
// scheduled event; the rest fire after the appends of their Step.
const (
	// FaultWALCorrupt flips a byte inside one series' write-ahead log. The
	// live engine keeps serving from memory; the next restore must fail the
	// log's checksum, quarantine it, and carry on with the other series.
	FaultWALCorrupt FaultKind = iota
	// FaultTornArtifact flips a byte inside the current verdict artifact of
	// one series, simulating torn storage under the registry. The next restore
	// must detect the bad frame and fall back (previous generation or cold
	// retrain) without serving the damaged model.
	FaultTornArtifact
	// FaultTornTypeArtifact flips a byte inside the current anomaly-type
	// artifact of one typed series. Unlike a torn verdict, one torn secondary
	// kind costs only that kind: the next restore must quarantine it, keep the
	// generation current, and serve the verdict head warm with the type head
	// gone (Status.TypedModel false) until the next publish.
	FaultTornTypeArtifact
	// FaultRollback rolls one series' model back a generation through the
	// public API and expects the live monitor to hot-swap to it.
	FaultRollback
	// FaultCrashRestore closes the engine (a graceful crash: the kill point
	// for torn WAL tails is exercised separately by tsdb's own fault tests),
	// then restores a fresh engine from disk and cross-checks it against a
	// twin restored from a copy of the same disk state.
	FaultCrashRestore
	// FaultSlowDisk stalls the store under one series' WAL writer: the next
	// append must blow the WAL deadline and flip the series into degraded
	// (threshold-only) serving with bounded buffering, then recover through
	// the hysteresis once the stall clears — with zero lost points.
	FaultSlowDisk
	// FaultHungTrainer wedges a training round via a gated detector: the
	// watchdog must abandon it as stalled, retry with backoff, quarantine the
	// series after the failure limit, and a manual retrain after the hang
	// clears must lift the quarantine.
	FaultHungTrainer
	// FaultIngestFlood pushes one batch over the shard's in-flight ingest
	// budget: admission control must shed it whole (ErrOverloaded, zero
	// points appended) and the next normal batch must sail through.
	FaultIngestFlood
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultWALCorrupt:
		return "wal_corrupt"
	case FaultTornArtifact:
		return "torn_artifact"
	case FaultTornTypeArtifact:
		return "torn_type_artifact"
	case FaultRollback:
		return "rollback"
	case FaultCrashRestore:
		return "crash_restore"
	case FaultSlowDisk:
		return "slow_disk"
	case FaultHungTrainer:
		return "hung_trainer"
	case FaultIngestFlood:
		return "ingest_flood"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent schedules one fault after the appends of step Step. Series
// selects the target for WALCorrupt by index into Scenario.Series; the other
// kinds resolve their target at runtime (first alive series that qualifies)
// so an earlier fault cannot invalidate the schedule.
type FaultEvent struct {
	Step   int
	Kind   FaultKind
	Series int
}

// SeriesSpec is one synthetic KPI under simulation.
type SeriesSpec struct {
	Name     string
	Profile  kpigen.Profile
	GenSeed  int64
	Operator labelsim.Operator
	// Typed makes the simulated operator attach anomaly-type names to its
	// label windows (derived from the injection schedule), so the series
	// trains a multi-class type head and publishes two-kind manifests.
	// Untyped series keep exercising the single-kind manifest shape.
	Typed bool
}

// Scenario is one reproducible simulation: everything the harness does is a
// pure function of this value (modulo goroutine scheduling, which the
// invariants are designed to be insensitive to).
type Scenario struct {
	Seed int64
	// BootWeeks of history are appended, labeled and trained before driving
	// starts; DriveWeeks are then driven step by step with weekly labeling
	// and automatic retraining (RetrainEvery = one week of points).
	BootWeeks, DriveWeeks int
	// BatchPoints is the points appended per series per step (the virtual
	// clock tick); it divides a week exactly.
	BatchPoints int
	// Series are the simulated KPIs (hourly interval, so a week is 168
	// points).
	Series []SeriesSpec
	// Faults is the schedule, ascending by Step.
	Faults []FaultEvent
	// DetectorPanics adds a deterministically panicking detector
	// configuration to every training round's registry.
	DetectorPanics bool
}

// Steps returns the number of drive steps.
func (s Scenario) Steps() int {
	return s.DriveWeeks * s.stepsPerWeek()
}

func (s Scenario) stepsPerWeek() int {
	ppw := int(7 * 24 * time.Hour / s.Series[0].Profile.Interval)
	return ppw / s.BatchPoints
}

// GenScenario derives a scenario from a seed. Every scenario includes at
// least one crash+restore, one rollback, and one torn artifact (verdict or
// type head, 50/50 — the acceptance floor); WAL corruption, an extra early
// crash, and a panicking detector ride along pseudo-randomly. long roughly
// doubles the driven length for soak runs.
func GenScenario(seed int64, long bool) Scenario {
	rng := rand.New(rand.NewSource(seed))
	driveWeeks := 2
	if long {
		driveWeeks = 4
	}
	const bootWeeks = 8
	const batch = 24 // one simulated day per step at the hourly interval

	nSeries := 2 + rng.Intn(2)
	kinds := []func(kpigen.Scale) kpigen.Profile{kpigen.PV, kpigen.SR, kpigen.SRT}
	order := rng.Perm(len(kinds))
	series := make([]SeriesSpec, 0, nSeries)
	for i := 0; i < nSeries; i++ {
		p := kinds[order[i%len(kinds)]](kpigen.Small)
		p.Interval = time.Hour // hourly keeps a seed in CI-sized time
		// One spare week of generated data beyond the driven length: the
		// slow-disk fault appends extra in-fault batches (degrade, buffer,
		// recover) that consume points outside the regular step budget.
		p.Weeks = bootWeeks + driveWeeks + 1
		p.Name = fmt.Sprintf("%s-%d", p.Name, i)
		series = append(series, SeriesSpec{
			Name:    p.Name,
			Profile: p,
			GenSeed: rng.Int63(),
			Operator: labelsim.Operator{
				BoundaryJitter: 1 + rng.Intn(2),
				MissBelow:      3,
				MissProb:       0.1,
				Seed:           rng.Int63(),
			},
			// Series 0 stays untyped so every scenario drives both manifest
			// shapes: legacy single-kind (verdict only) and multi-kind
			// (verdict + atype) side by side.
			Typed: i != 0,
		})
	}

	spw := (7 * 24) / batch // steps per week
	steps := driveWeeks * spw
	lastWeek := (driveWeeks - 1) * spw // first step of the last driven week

	var faults []FaultEvent
	// Optional early crash in the first driven week (only one generation
	// exists yet, so restore exercises the single-artifact warm path).
	if rng.Float64() < 0.4 {
		faults = append(faults, FaultEvent{Step: 1 + rng.Intn(spw-2), Kind: FaultCrashRestore})
	}
	// Optional WAL corruption of one series somewhere before the final week;
	// the mandatory crash below quarantines it.
	if rng.Float64() < 0.6 {
		faults = append(faults, FaultEvent{
			Step:   rng.Intn(lastWeek),
			Kind:   FaultWALCorrupt,
			Series: rng.Intn(nSeries),
		})
	}
	// Mandatory resilience faults (DESIGN.md §11). The ingest flood is
	// instantaneous and mirror-neutral, so any step works. The hung trainer
	// wedges a scheduled retrain, so it anchors at the first weekly boundary
	// — the one step where every surviving series is guaranteed to cross the
	// retrain watermark (later boundaries can be pinned by a rollback or a
	// restore); the harness defers it to a later qualifying step if needed.
	// The slow disk appends four extra in-fault batches and must keep the
	// retrain watermark distance under a week throughout, which restricts it
	// to steps just after a boundary; it also stays off the early-crash
	// range so its degraded window never overlaps a live restore-determinism
	// twin.
	faults = append(faults, FaultEvent{Step: rng.Intn(steps), Kind: FaultIngestFlood})
	hung := spw - 1
	faults = append(faults, FaultEvent{Step: hung, Kind: FaultHungTrainer, Series: rng.Intn(nSeries)})
	var slowOK []int
	for s := 0; s < steps; s++ {
		if r := s % spw; r != 0 && r != 1 && r != spw-1 {
			continue
		}
		if (s >= 1 && s <= spw-2) || s == hung {
			continue
		}
		slowOK = append(slowOK, s)
	}
	faults = append(faults, FaultEvent{Step: slowOK[rng.Intn(len(slowOK))], Kind: FaultSlowDisk})
	// Mandatory rollback once every series has two generations (after the
	// first weekly retrain, i.e. from the second driven week on).
	rollback := spw + rng.Intn(spw-3)
	faults = append(faults, FaultEvent{Step: rollback, Kind: FaultRollback})
	// Mandatory torn artifact after the rollback — one of the two kinds, so
	// the matrix covers both the whole-generation fallback (torn verdict) and
	// the single-kind quarantine (torn type head) — then the mandatory crash
	// in the same driven week (so the torn generation is still current when
	// the restore walks the registry).
	torn := rollback + 1
	if rng.Float64() < 0.5 {
		faults = append(faults, FaultEvent{Step: torn, Kind: FaultTornArtifact})
	} else {
		faults = append(faults, FaultEvent{Step: torn, Kind: FaultTornTypeArtifact})
	}
	crash := torn + 1 + rng.Intn(steps-torn-2)
	faults = append(faults, FaultEvent{Step: crash, Kind: FaultCrashRestore})

	sortFaults(faults)
	return Scenario{
		Seed:           seed,
		BootWeeks:      bootWeeks,
		DriveWeeks:     driveWeeks,
		BatchPoints:    batch,
		Series:         series,
		Faults:         faults,
		DetectorPanics: rng.Float64() < 0.5,
	}
}

// sortFaults orders the schedule by step (stable for same-step events, which
// the harness applies in slice order).
func sortFaults(fs []FaultEvent) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].Step < fs[j-1].Step; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
