package simtest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"opprentice/internal/engine"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/tsdb"
)

// hookTimeout bounds every wait on an engine lifecycle hook. The engine's
// work per round is milliseconds at simulation scale, so a minute means
// "wedged", not "slow".
const hookTimeout = 60 * time.Second

// traceTail is how many trailing step-trace lines a Violation carries.
const traceTail = 40

// Violation is one invariant failure, carrying everything needed to
// reproduce it: the scenario seed, the step, and the trailing step trace.
type Violation struct {
	Seed      int64
	Step      int
	Invariant string
	Detail    string
	Long      bool
	Trace     []string
}

// Error renders the violation with its reproduction command.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simtest: invariant %q violated at step %d (seed %d): %s\n",
		v.Invariant, v.Step, v.Seed, v.Detail)
	fmt.Fprintf(&b, "reproduce: go test ./internal/simtest -run TestSimSeed -seed=%d", v.Seed)
	if v.Long {
		b.WriteString(" -sim.long")
	}
	if len(v.Trace) > 0 {
		fmt.Fprintf(&b, "\ntrace (last %d events):", len(v.Trace))
		for _, line := range v.Trace {
			b.WriteString("\n  ")
			b.WriteString(line)
		}
	}
	return b.String()
}

// fail builds a *Violation for the named invariant at the current step.
func (h *Harness) fail(invariant, format string, args ...any) error {
	trace := h.trace
	if len(trace) > traceTail {
		trace = trace[len(trace)-traceTail:]
	}
	return &Violation{
		Seed:      h.scen.Seed,
		Step:      h.step,
		Invariant: invariant,
		Detail:    fmt.Sprintf(format, args...),
		Long:      h.long,
		Trace:     append([]string(nil), trace...),
	}
}

// awaitTrain waits for the next TrainDone event of the named series,
// stashing events of other series (the publish worker and restore pool do
// not promise cross-series ordering).
func (h *Harness) awaitTrain(name string) (trainEvent, error) {
	ev, ok := h.awaitTrainWithin(name, hookTimeout)
	if !ok {
		return trainEvent{}, h.fail("hook_timeout", "no TrainDone for %s within %v", name, hookTimeout)
	}
	return ev, nil
}

// awaitTrainWithin is awaitTrain with a caller-chosen timeout and no
// violation on expiry (ok=false instead): the stall orchestration turns a
// missing TrainDone into a watchdog violation of its own.
func (h *Harness) awaitTrainWithin(name string, d time.Duration) (trainEvent, bool) {
	if evs := h.trainStash[name]; len(evs) > 0 {
		ev := evs[0]
		h.trainStash[name] = evs[1:]
		return ev, true
	}
	timeout := time.After(d)
	for {
		select {
		case ev := <-h.trainCh:
			if ev.series == name {
				return ev, true
			}
			h.trainStash[ev.series] = append(h.trainStash[ev.series], ev)
		case <-timeout:
			return trainEvent{}, false
		}
	}
}

// awaitPub waits for the next PublishDone event of the named series,
// stashing events of other series.
func (h *Harness) awaitPub(name string) (pubEvent, error) {
	if evs := h.pubStash[name]; len(evs) > 0 {
		ev := evs[0]
		h.pubStash[name] = evs[1:]
		return ev, nil
	}
	timeout := time.After(hookTimeout)
	for {
		select {
		case ev := <-h.pubCh:
			if ev.series == name {
				return ev, nil
			}
			h.pubStash[ev.series] = append(h.pubStash[ev.series], ev)
		case <-timeout:
			return pubEvent{}, h.fail("hook_timeout", "no PublishDone for %s within %v", name, hookTimeout)
		}
	}
}

// checkManifest re-reads the series' manifest bytes from disk, asserts they
// parse, that the current generation has an intact entry, and that every
// artifact kind the entry names is on disk and not truncated — the
// multi-kind publish commits atomically, so a manifest may never name a
// kind whose artifact did not land. With checkCThld the current entry must
// also record exactly the given threshold and the mirror's training
// watermark, and the live monitor must agree with the manifest about the
// type head — the manifest and the live monitor may never disagree about
// what is deployed.
func (h *Harness) checkManifest(st *seriesState, cthld float64, checkCThld bool) error {
	name := st.spec.Name
	path := filepath.Join(h.modelDir, name, "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return h.fail("manifest", "series %s: manifest unreadable: %v", name, err)
	}
	man, err := modelreg.ParseManifest(data)
	if err != nil {
		return h.fail("manifest", "series %s: manifest on disk does not parse: %v", name, err)
	}
	cur := manifestCurrent(*man)
	if cur == nil {
		return h.fail("manifest", "series %s: current generation %d has no manifest entry", name, man.Current)
	}
	for _, kind := range cur.Kinds() {
		ref := cur.Ref(kind)
		if ref == nil {
			return h.fail("manifest", "series %s: current generation %d lists kind %q without an artifact ref", name, cur.Gen, kind)
		}
		fi, err := os.Stat(filepath.Join(h.modelDir, name, ref.File))
		if err != nil {
			return h.fail("manifest", "series %s: current generation %d kind %q artifact %s missing — the kind set did not publish atomically: %v",
				name, cur.Gen, kind, ref.File, err)
		}
		if fi.Size() < ref.Size {
			return h.fail("manifest", "series %s: current generation %d kind %q artifact %s truncated: %d bytes on disk for a %d-byte payload",
				name, cur.Gen, kind, ref.File, fi.Size(), ref.Size)
		}
	}
	if checkCThld {
		if math.Float64bits(cur.CThld) != math.Float64bits(cthld) {
			return h.fail("manifest", "series %s: manifest cthld %v for gen %d, live training produced %v", name, cur.CThld, cur.Gen, cthld)
		}
		if cur.Points != st.pointsAtTrain {
			return h.fail("manifest", "series %s: manifest gen %d published at %d points, mirror watermark %d", name, cur.Gen, cur.Points, st.pointsAtTrain)
		}
		status, serr := h.eng.Status(context.Background(), name)
		if serr != nil {
			return h.fail("manifest", "series %s: status after publish: %v", name, serr)
		}
		if hasType := cur.Ref(modelreg.KindType) != nil; status.TypedModel != hasType {
			return h.fail("manifest", "series %s: live type head %v but just-published generation %d has a type artifact %v — both heads must publish and swap together",
				name, status.TypedModel, cur.Gen, hasType)
		}
	}
	return nil
}

// crashRestore closes the live engine gracefully, snapshots the disk state,
// restores a fresh engine from it, and cross-checks the result against the
// mirror and against a twin engine restored from the byte-identical snapshot.
func (h *Harness) crashRestore() error {
	h.crashes++
	h.tracef("step %d: crash (restore #%d)", h.step, h.crashes)
	if h.twin != nil {
		h.discardTwin()
	}

	// The resilience counters die with the instance: settle the mirror's
	// predictions against them before the teardown.
	if err := h.checkResilience(); err != nil {
		return err
	}

	// Graceful crash: torn WAL tails are tsdb's own fault-test territory; the
	// simulation exercises the restore ladder over consistent logs.
	h.eng.Close()
	h.store.Close()
	if err := h.assertQuiescent(); err != nil {
		return err
	}

	// Snapshot the disk before anything reopens it: the twin must restore
	// from byte-identical state.
	twinDir := filepath.Join(h.scratch, fmt.Sprintf("twin-%d", h.crashes))
	twinData := filepath.Join(twinDir, "data")
	twinModels := filepath.Join(twinDir, "models")
	if err := copyTree(h.dataDir, twinData); err != nil {
		return fmt.Errorf("simtest: snapshot data dir: %w", err)
	}
	if err := copyTree(h.modelDir, twinModels); err != nil {
		return fmt.Errorf("simtest: snapshot model dir: %w", err)
	}

	// Evaluate the torn-artifact expectations against the mirror before any
	// restore-driven publication can move the generation count.
	tornPending := false
	if h.tornSeries != "" {
		st := h.mirror[h.tornSeries]
		tornPending = !st.dead && !st.corrupted && h.tornPubLen == len(st.pubs)
	}
	tornTypePending := false
	if h.tornTypeSeries != "" {
		st := h.mirror[h.tornTypeSeries]
		tornTypePending = !st.dead && !st.corrupted && h.tornTypePubLen == len(st.pubs)
	}

	// Restore the live engine.
	if err := h.buildEngine(); err != nil {
		return err
	}
	restored, err := h.eng.Restore(context.Background())
	if err != nil {
		return h.fail("restore", "engine restore failed: %v", err)
	}
	c := h.eng.Counters()

	// Corrupt WALs must be quarantined, exactly once each, and their series
	// must be gone from the engine (one bad log never takes down the rest).
	expectQuarantined := 0
	for _, name := range h.names {
		st := h.mirror[name]
		if st.corrupted && !st.dead {
			expectQuarantined++
			st.dead = true
			if _, serr := h.eng.Status(context.Background(), name); !errors.Is(serr, engine.ErrNotFound) {
				return h.fail("wal", "series %s: corrupt WAL but restore served it anyway (status err %v)", name, serr)
			}
			if err := h.checkQuarantined(name); err != nil {
				return err
			}
			h.tracef("step %d: restore quarantined %s", h.step, name)
		}
	}
	if c.WALQuarantined != int64(expectQuarantined) {
		return h.fail("wal", "restore quarantined %d logs, mirror expected %d", c.WALQuarantined, expectQuarantined)
	}
	alive := 0
	for _, name := range h.names {
		if !h.mirror[name].dead {
			alive++
		}
	}
	if restored != alive {
		return h.fail("restore", "restore recovered %d series, mirror expected %d alive", restored, alive)
	}

	// Torn artifact: the registry must have caught the flipped byte while
	// walking the warm rung — unless the series published again after the
	// fault (the torn generation is then no longer current) or died first.
	if h.tornSeries != "" {
		if tornPending && c.ModelChecksumFailures == 0 {
			return h.fail("torn_artifact", "series %s: artifact torn before the crash but the registry reported no checksum failure — the damaged frame was served",
				h.tornSeries)
		}
		h.tracef("step %d: torn artifact on %s detected by restore (checksum failures %d)", h.step, h.tornSeries, c.ModelChecksumFailures)
		h.tornSeries, h.tornPubLen = "", 0
	} else if h.tornTypeSeries == "" && c.ModelChecksumFailures != 0 {
		return h.fail("torn_artifact", "restore reported %d artifact checksum failures with no torn-artifact fault scheduled", c.ModelChecksumFailures)
	}

	// Split the survivors into cold (TrainDone fired during Restore) and
	// warm. Cold restores retrain on the full WAL and republish; warm ones
	// must serve exactly the manifest's current generation.
	cold := make(map[string]engine.TrainResult)
	for {
		select {
		case ev := <-h.trainCh:
			if ev.err != nil {
				return h.fail("restore", "series %s: cold restore training failed: %v", ev.series, ev.err)
			}
			cold[ev.series] = ev.res
		default:
			goto drained
		}
	}
drained:
	for name, res := range cold {
		st := h.mirror[name]
		if st.dead {
			return h.fail("restore", "series %s: quarantined but cold-retrained anyway", name)
		}
		if res.Points != st.total {
			return h.fail("restore", "series %s: cold restore trained on %d points, WAL holds %d", name, res.Points, st.total)
		}
		st.pointsAtTrain = st.total
		h.trains++
		if err := h.awaitPublishInto(st, res); err != nil {
			return err
		}
		if err := h.checkManifest(st, res.CThld, true); err != nil {
			return err
		}
		if err := h.eng.VerifyFeatureCache(name); err != nil {
			return h.fail("extract_cache", "series %s: incremental extraction diverges from cold after cold restore: %v", name, err)
		}
		h.tracef("step %d: %s restored cold (%d points, cthld=%.4f)", h.step, name, res.Points, res.CThld)
	}
	if c.ModelRestoreCold != int64(len(cold)) {
		return h.fail("restore", "engine counted %d cold restores, hooks saw %d", c.ModelRestoreCold, len(cold))
	}
	if c.ModelRestoreWarm != int64(alive-len(cold)) {
		return h.fail("restore", "engine counted %d warm restores, mirror expected %d", c.ModelRestoreWarm, alive-len(cold))
	}

	// Torn type artifact: one torn secondary kind must cost exactly that kind.
	// The registry quarantines it (a checksum failure), the generation stays
	// current and serves verdicts warm, and the restored engine runs without
	// a type head until the next publish.
	if h.tornTypeSeries != "" {
		name := h.tornTypeSeries
		if tornTypePending {
			if c.ModelChecksumFailures == 0 {
				return h.fail("torn_artifact", "series %s: type artifact torn before the crash but the registry reported no checksum failure — the damaged head was served", name)
			}
			if _, isCold := cold[name]; isCold {
				return h.fail("torn_artifact", "series %s: one torn secondary kind forced a cold restore — the verdict head must keep the generation serving warm", name)
			}
			status, serr := h.eng.Status(context.Background(), name)
			if serr != nil {
				return h.fail("torn_artifact", "series %s: status after torn-type restore: %v", name, serr)
			}
			if status.TypedModel {
				return h.fail("torn_artifact", "series %s: type artifact torn and quarantined but the restored engine still serves a type head", name)
			}
			h.tracef("step %d: torn type artifact on %s quarantined by restore (checksum failures %d)", h.step, name, c.ModelChecksumFailures)
		}
		h.tornTypeSeries, h.tornTypePubLen = "", 0
	}

	// Per-series state checks against the mirror, and the warm-path pin: a
	// warm series serves the manifest's current generation, bit for bit.
	for _, name := range h.names {
		st := h.mirror[name]
		if st.dead {
			continue
		}
		status, serr := h.eng.Status(context.Background(), name)
		if serr != nil {
			return h.fail("restore", "series %s: status after restore: %v", name, serr)
		}
		if status.Points != st.total {
			return h.fail("wal", "series %s: WAL replay produced %d points, mirror appended %d", name, status.Points, st.total)
		}
		if want := countTrue(st.labels); status.AnomalousPoints != want {
			return h.fail("wal", "series %s: WAL replay produced %d anomalous labels, mirror holds %d", name, status.AnomalousPoints, want)
		}
		if !status.Trained {
			return h.fail("restore", "series %s: restored without a classifier despite trainable history", name)
		}
		if _, isCold := cold[name]; !isCold {
			man, merr := h.eng.ModelManifest(name)
			if merr != nil {
				return h.fail("manifest", "series %s: manifest unreadable after warm restore: %v", name, merr)
			}
			cur := manifestCurrent(man)
			if cur == nil {
				return h.fail("manifest", "series %s: current generation %d has no entry after warm restore", name, man.Current)
			}
			if math.Float64bits(status.CThld) != math.Float64bits(cur.CThld) {
				return h.fail("restore", "series %s: warm restore serves cthld %v but manifest gen %d published %v",
					name, status.CThld, cur.Gen, cur.CThld)
			}
			if !status.TrainedAt.Equal(cur.TrainedAt) {
				return h.fail("restore", "series %s: warm restore serves a model trained at %v, manifest gen %d records %v",
					name, status.TrainedAt, cur.Gen, cur.TrainedAt)
			}
			if wantTyped := typeArtifactLoadable(h.modelDir, name, cur); status.TypedModel != wantTyped {
				return h.fail("restore", "series %s: warm restore serves type head %v but manifest gen %d has a loadable type artifact %v",
					name, status.TypedModel, cur.Gen, wantTyped)
			}
			st.pointsAtTrain = cur.Points
			h.tracef("step %d: %s restored warm (gen %d, %d points)", h.step, name, cur.Gen, cur.Points)
		}
		st.anomSinceRestore = 0
	}
	h.ingestSinceRestore = 0

	// WAL files must replay bit-identically to the mirror right now, not
	// just at the end of the run.
	if err := h.checkWALs(); err != nil {
		return err
	}

	// Restore determinism: a twin engine restored from the byte-identical
	// snapshot must agree with the live engine on every observable, and (via
	// the probe in appendChecked) on every verdict of the next step.
	tstore, err := tsdb.Open(twinData)
	if err != nil {
		return fmt.Errorf("simtest: open twin store: %w", err)
	}
	tmodels, err := modelreg.Open(modelreg.Config{Dir: twinModels, Keep: 4})
	if err != nil {
		return fmt.Errorf("simtest: open twin registry: %w", err)
	}
	teng := engine.New(h.engineConfig(tstore, tmodels, newRecorder(h.scen.Seed, 0), false))
	if _, err := teng.Restore(context.Background()); err != nil {
		teng.Close()
		tstore.Close()
		return h.fail("restore_determinism", "twin restore from identical disk state failed: %v", err)
	}
	h.twin = &twinState{eng: teng, store: tstore, dir: twinDir}
	for _, name := range h.names {
		st := h.mirror[name]
		if st.dead {
			continue
		}
		live, lerr := h.eng.Status(context.Background(), name)
		twin, terr := teng.Status(context.Background(), name)
		if lerr != nil || terr != nil {
			return h.fail("restore_determinism", "series %s: status live err %v, twin err %v", name, lerr, terr)
		}
		if live.Points != twin.Points || live.AnomalousPoints != twin.AnomalousPoints ||
			live.LabeledWindows != twin.LabeledWindows || live.Trained != twin.Trained ||
			live.TypedModel != twin.TypedModel ||
			math.Float64bits(live.CThld) != math.Float64bits(twin.CThld) {
			return h.fail("restore_determinism", "series %s: two engines restored from identical disk state diverge: live %+v vs twin %+v",
				name, live, twin)
		}
	}
	h.tracef("step %d: restore complete (%d warm, %d cold), twin agrees", h.step, alive-len(cold), len(cold))
	return nil
}

// discardTwin shuts the twin engine down and removes its disk snapshot.
func (h *Harness) discardTwin() {
	h.twin.eng.Close()
	h.twin.store.Close()
	_ = os.RemoveAll(h.twin.dir)
	h.twin = nil
}

// preCloseChecks compares the engine's global counters against the mirror
// just before the final shutdown.
func (h *Harness) preCloseChecks() error {
	c := h.eng.Counters()
	if c.WALAppendErrors != 0 {
		return h.fail("wal", "%d WAL appends failed during the run", c.WALAppendErrors)
	}
	if c.PointsIngested != int64(h.ingestSinceRestore) {
		return h.fail("append", "engine counted %d ingested points since the last restore, harness appended %d",
			c.PointsIngested, h.ingestSinceRestore)
	}
	anoms := 0
	for _, name := range h.names {
		st := h.mirror[name]
		if !st.dead {
			anoms += st.anomSinceRestore
		}
	}
	if c.AlarmsRaised != int64(anoms) {
		return h.fail("verdicts", "engine raised %d alarms since the last restore, harness observed %d anomalous verdicts",
			c.AlarmsRaised, anoms)
	}
	if h.scen.DetectorPanics && c.DetectorPanics == 0 {
		return h.fail("sandbox", "scenario runs a deterministically panicking detector but no panic was sandboxed")
	}
	if !h.scen.DetectorPanics && c.DetectorPanics != 0 {
		return h.fail("sandbox", "%d detector panics sandboxed with no panicking detector configured", c.DetectorPanics)
	}
	return h.checkResilience()
}

// assertQuiescent asserts that no lifecycle event is waiting anywhere: every
// train and publish the engine performed was awaited and accounted for by
// the mirror.
func (h *Harness) assertQuiescent() error {
	select {
	case ev := <-h.trainCh:
		return h.fail("quiescence", "unaccounted TrainDone for %s (res %+v, err %v) — the mirror missed a training round",
			ev.series, ev.res, ev.err)
	default:
	}
	select {
	case ev := <-h.pubCh:
		return h.fail("quiescence", "unaccounted PublishDone for %s (gen %d, err %v) — the mirror missed a publication",
			ev.series, ev.gen, ev.err)
	default:
	}
	for name, evs := range h.trainStash {
		if len(evs) > 0 {
			return h.fail("quiescence", "%d stashed TrainDone events for %s never claimed", len(evs), name)
		}
	}
	for name, evs := range h.pubStash {
		if len(evs) > 0 {
			return h.fail("quiescence", "%d stashed PublishDone events for %s never claimed", len(evs), name)
		}
	}
	return nil
}

// checkQuarantined asserts the two halves of the quarantine contract for one
// series: the name is retired from the catalog (an independent reader cannot
// load it), yet the damaged frames stay on disk as evidence — tombstoned
// segment records that Dump can still render, with the CRC failure visible.
func (h *Harness) checkQuarantined(name string) error {
	probe, err := tsdb.Open(h.dataDir)
	if err != nil {
		return err
	}
	defer probe.Close()
	if _, lerr := probe.Load(name); lerr == nil {
		return h.fail("wal", "series %s: still loads after quarantine", name)
	} else if errors.Is(lerr, tsdb.ErrCorrupt) {
		return h.fail("wal", "series %s: quarantine left the corrupt binding live (%v)", name, lerr)
	}
	stats, derr := tsdb.Dump(h.dataDir, io.Discard, tsdb.DumpOptions{Series: name})
	if derr != nil {
		return h.fail("wal", "series %s: dump after quarantine failed: %v", name, derr)
	}
	if stats.Records == 0 {
		return h.fail("wal", "series %s: quarantine dropped the damaged frames from disk", name)
	}
	if stats.CorruptFrames == 0 {
		return h.fail("wal", "series %s: quarantined evidence has no CRC-failed frame", name)
	}
	return nil
}

// checkWALs replays every series' log with an independent reader and
// compares it bit for bit against the mirror: values, labels, and the
// creation metadata that derives the (strictly monotonic) timestamps.
// Corrupt series must refuse to load; quarantined ones must stay retired
// with their damaged frames preserved.
func (h *Harness) checkWALs() error {
	probe, err := tsdb.Open(h.dataDir)
	if err != nil {
		return err
	}
	defer probe.Close()
	for _, name := range h.names {
		st := h.mirror[name]
		switch {
		case st.dead:
			if err := h.checkQuarantined(name); err != nil {
				return err
			}
		case st.corrupted:
			if _, lerr := probe.Load(name); !errors.Is(lerr, tsdb.ErrCorrupt) {
				return h.fail("wal", "series %s: corrupted log loaded without ErrCorrupt (err %v)", name, lerr)
			}
		default:
			loaded, lerr := probe.Load(name)
			if lerr != nil {
				return h.fail("wal", "series %s: log replay failed: %v", name, lerr)
			}
			if loaded.Meta.IntervalSeconds != int(st.spec.Profile.Interval/time.Second) {
				return h.fail("wal", "series %s: replayed interval %ds, created with %v", name, loaded.Meta.IntervalSeconds, st.spec.Profile.Interval)
			}
			if !loaded.Meta.Start.Equal(st.data.Series.Start) {
				return h.fail("wal", "series %s: replayed start %v, created with %v — derived timestamps would not be monotonic with the mirror's",
					name, loaded.Meta.Start, st.data.Series.Start)
			}
			if len(loaded.Values) != st.total {
				return h.fail("wal", "series %s: log replays %d points, mirror appended %d", name, len(loaded.Values), st.total)
			}
			for i, v := range loaded.Values {
				if math.Float64bits(v) != math.Float64bits(st.data.Series.Values[i]) {
					return h.fail("wal", "series %s: replayed value at %d is %v, mirror appended %v", name, i, v, st.data.Series.Values[i])
				}
			}
			if len(loaded.Labels) != len(st.labels) {
				return h.fail("wal", "series %s: log replays %d labels, mirror holds %d", name, len(loaded.Labels), len(st.labels))
			}
			for i, l := range loaded.Labels {
				if l != st.labels[i] {
					return h.fail("wal", "series %s: replayed label at %d is %v, mirror holds %v", name, i, l, st.labels[i])
				}
			}
			// The typed anomaly-class channel materializes exactly when a
			// typed label was issued (legacy byte streams stay legacy) and
			// then replays bit for bit against the mirror.
			if !st.typedSeen {
				if loaded.Types != nil {
					return h.fail("wal", "series %s: replay materialized a typed channel (%d entries) but no typed label was ever issued", name, len(loaded.Types))
				}
			} else {
				if len(loaded.Types) != st.total {
					return h.fail("wal", "series %s: replayed %d typed-class entries, mirror holds %d", name, len(loaded.Types), st.total)
				}
				for i, cl := range loaded.Types {
					if cl != st.types[i] {
						return h.fail("wal", "series %s: replayed anomaly class at %d is %d, mirror holds %d", name, i, cl, st.types[i])
					}
				}
			}
		}
	}
	return nil
}

// copyTree recursively copies a directory (regular files only — the WAL and
// registry write nothing else).
func copyTree(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		s, d := filepath.Join(src, e.Name()), filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := copyTree(s, d); err != nil {
				return err
			}
			continue
		}
		if err := copyFile(s, d); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
