package simtest

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"time"

	"opprentice/internal/alerting"
	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/engine"
	"opprentice/internal/faultinject"
	"opprentice/internal/kpigen"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/tsdb"
)

// trainEvent / pubEvent carry engine lifecycle hooks into the harness.
type trainEvent struct {
	series string
	res    engine.TrainResult
	err    error
}

type pubEvent struct {
	series string
	gen    uint64
	err    error
}

// pubRecord is the mirror's memory of one published generation.
type pubRecord struct {
	gen       uint64
	trainedAt time.Time
	points    int
	cthld     float64
}

// seriesState is the mirror model of one simulated series: everything the
// engine should believe, derived independently from the scenario.
type seriesState struct {
	spec  SeriesSpec
	data  *kpigen.Dataset
	ppw   int
	truth []uint8 // per-point injected anomaly class (wire codes)

	total     int     // points appended so far
	labeledTo int     // labeling high-water mark (index)
	labels    []bool  // mirror of the engine's label state
	types     []uint8 // mirror of the engine's typed-label channel
	// typedSeen records that a typed window was issued: from then on the
	// engine and the WAL materialize the class channel (before it they must
	// not, so legacy byte streams stay legacy).
	typedSeen        bool
	trained          bool
	pointsAtTrain    int // mirror of the engine's retrain watermark
	pubs             []pubRecord
	anomSinceRestore int  // anomalous verdicts since the last (re)start
	corrupted        bool // WAL damaged; dies at the next restore
	dead             bool // quarantined by a restore
}

// twinState is a second engine restored from a byte-identical copy of the
// disk state, used for the restore-determinism invariant.
type twinState struct {
	eng   *engine.Engine
	store *tsdb.Store
	dir   string
}

// Harness drives one scenario against a real engine (WAL + model registry +
// alerting pipelines + async retrain/publish workers) in a temp directory and
// checks the package-level invariants after every step. The driver itself is
// single-threaded — concurrency comes from the engine's own workers, and the
// harness quiesces (awaits the TrainDone/PublishDone hooks) at every point
// where asynchrony would make the mirror ambiguous.
type Harness struct {
	scen Scenario
	long bool

	dataDir, modelDir, scratch string
	log                        *slog.Logger

	eng    *engine.Engine
	store  *tsdb.Store
	models *modelreg.Registry
	rec    *recorder

	trainCh    chan trainEvent
	pubCh      chan pubEvent
	trainStash map[string][]trainEvent
	pubStash   map[string][]pubEvent

	names  []string
	mirror map[string]*seriesState

	step               int
	crashes            int
	rollbacks          int
	trains             int
	ingestSinceRestore int

	// Resilience fault machinery (DESIGN.md §11): the WAL gate stalls the
	// store under the live engine's writers, the train gate wedges training
	// rounds via a gated detector configuration, and the exp* counters are
	// the mirror's prediction of the engine's overload/watchdog counters
	// since the last restore.
	walGate, trainGate *faultinject.StallGate
	hungStep           int    // earliest step for the hung-trainer fault (-1: none)
	hungTarget         int    // preferred series index for it
	hungNow            string // series wedged this step ("" = none)
	hungDone           bool
	stallArmed         bool
	expSheds           int64
	expDegEntered      int64
	expDegRecovered    int64
	expBuffered        int64
	expStalls          int64
	expRetries         int64
	expQuarantined     int64

	twin       *twinState
	tornSeries string
	tornPubLen int
	// Torn-type bookkeeping, parallel to tornSeries: the series whose current
	// anomaly-type artifact was torn, and its publication count at the fault
	// (a later publish makes the torn generation non-current and voids the
	// expectation).
	tornTypeSeries string
	tornTypePubLen int

	trace []string

	// MutateDropVerdict, when set, is invoked on every append result before
	// invariant checking. Harness self-tests use it to emulate an engine bug
	// (losing a verdict) and assert the oracle catches it.
	MutateDropVerdict func(series string, step int, res *engine.AppendResult)
	// DisableWatchdog turns the training watchdog off through its runtime
	// hook before the gated round runs. The mutation self-test uses it to
	// prove the stall invariant bites: with no watchdog the gated round
	// never completes and the harness must report a watchdog violation.
	DisableWatchdog bool
	// MutatePartialPublish, when set, is invoked right after every awaited
	// publication with the series' artifact directory. The mutation self-test
	// uses it to emulate a non-atomic multi-kind publish (deleting one kind's
	// file behind the manifest) and assert the manifest invariant catches it.
	MutatePartialPublish func(series string, gen uint64, seriesDir string)
}

// Result summarizes a passing run.
type Result struct {
	Steps, Trains, Crashes, Rollbacks int
	DeliveredEvents                   int
	DeliveryAttempts, DeliveryRetries int
}

// NewHarness prepares (but does not run) a scenario inside baseDir, which
// must be an empty directory the caller owns (tests pass t.TempDir()).
func NewHarness(scen Scenario, baseDir string, long bool) (*Harness, error) {
	h := &Harness{
		scen:       scen,
		long:       long,
		dataDir:    filepath.Join(baseDir, "data"),
		modelDir:   filepath.Join(baseDir, "models"),
		scratch:    filepath.Join(baseDir, "scratch"),
		log:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		rec:        newRecorder(scen.Seed*7919+13, 0.25),
		trainCh:    make(chan trainEvent, 1024),
		pubCh:      make(chan pubEvent, 1024),
		trainStash: make(map[string][]trainEvent),
		pubStash:   make(map[string][]pubEvent),
		mirror:     make(map[string]*seriesState),
		walGate:    &faultinject.StallGate{},
		trainGate:  &faultinject.StallGate{},
		hungStep:   -1,
	}
	for _, f := range scen.Faults {
		if f.Kind == FaultHungTrainer {
			h.hungStep, h.hungTarget = f.Step, f.Series
		}
	}
	for _, dir := range []string{h.dataDir, h.modelDir, h.scratch} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	for _, spec := range scen.Series {
		data := kpigen.Generate(spec.Profile, spec.GenSeed)
		ppw, err := data.Series.PointsPerWeek()
		if err != nil {
			return nil, err
		}
		h.names = append(h.names, spec.Name)
		h.mirror[spec.Name] = &seriesState{spec: spec, data: data, ppw: ppw, truth: kpigen.TypedLabels(data)}
	}
	return h, nil
}

// registryFn returns the detector-set factory for the scenario: the default
// registry, one stalling configuration the hung-trainer fault wedges, and
// one deterministically panicking configuration when the scenario says so.
// The stalling detector is bound to the gate only when the set is created
// inside an armed window — which is exactly the wedged training rounds: the
// driver arms the gate before the append that schedules the round. Sets
// created while disarmed (boot, publishes, restores, the serving monitors)
// get an inert instance, so live verdict serving never blocks. Either way
// the configuration contributes the same constant feature, keeping the twin
// bit-identical. The twin shares the factory for the same reason.
func (h *Harness) registryFn() func(time.Duration) ([]detectors.Detector, error) {
	return func(interval time.Duration) ([]detectors.Detector, error) {
		ds, err := detectors.Registry(interval)
		if err != nil {
			return nil, err
		}
		var gate *faultinject.StallGate
		if h.trainGate.Armed() {
			gate = h.trainGate
		}
		ds = append(ds, &faultinject.StallingDetector{ConfigName: "sim(stall)", Gate: gate})
		if h.scen.DetectorPanics {
			ds = append(ds, &faultinject.PanickingDetector{ConfigName: "sim(panic)", PanicAfter: 3})
		}
		return ds, nil
	}
}

// engineConfig assembles the engine configuration. hooked engines feed the
// harness' lifecycle channels; the twin runs unhooked with a throwaway
// recorder so it cannot pollute the live accounting.
func (h *Harness) engineConfig(store engine.Store, models *modelreg.Registry, rec *recorder, hooked bool) engine.Config {
	cfg := engine.Config{
		Log:            h.log,
		Shards:         4,
		MaxAlarms:      1 << 14,
		Store:          store,
		Models:         models,
		Registry:       h.registryFn(),
		RetrainWorkers: 2,
		RestoreWorkers: 2,
		ExtractCacheMB: 64,
		// Resilience knobs sized for the simulation: a budget one oversized
		// batch can trip, a short recovery hysteresis, and a failure limit
		// of 2 so one watchdog retry reaches quarantine.
		IngestInflight:   simInflight,
		DegradedRecovery: recoveryWindow,
		TrainRetries:     3,
		TrainFailLimit:   2,
		// Drift detection is off in the classic matrix: its mirror predicts
		// retrains from the fixed watermark tick alone, and the fault
		// schedule (degraded replays, crashes) shifts vote distributions
		// enough to arm spurious early rounds. The regime-change scenarios
		// (regime.go) enable it and assert on exactly those early rounds.
		DriftThreshold: -1,
		Notify: alerting.PipelineConfig{
			QueueSize:        1024,
			MaxAttempts:      10,
			BaseDelay:        time.Millisecond,
			MaxDelay:         2 * time.Millisecond,
			Jitter:           0.1,
			AttemptTimeout:   time.Second,
			BreakerThreshold: 1 << 20, // keep the breaker out of the soak's way
			BreakerCooldown:  time.Millisecond,
			Log:              h.log,
		},
		Notifier: func(_, _ string) alerting.Notifier { return rec },
	}
	if hooked {
		cfg.Hooks = engine.Hooks{
			TrainDone: func(series string, res engine.TrainResult, err error) {
				h.trainCh <- trainEvent{series: series, res: res, err: err}
			},
			PublishDone: func(series string, gen uint64, err error) {
				h.pubCh <- pubEvent{series: series, gen: gen, err: err}
			},
		}
	}
	return cfg
}

// buildEngine (re)opens the store and registry and starts a hooked engine.
func (h *Harness) buildEngine() error {
	store, err := tsdb.Open(h.dataDir)
	if err != nil {
		return err
	}
	models, err := modelreg.Open(modelreg.Config{Dir: h.modelDir, Keep: 4})
	if err != nil {
		return err
	}
	h.store, h.models = store, models
	h.eng = engine.New(h.engineConfig(&gatedStore{Store: store, gate: h.walGate}, models, h.rec, true))
	// The resilience counters die with the engine instance (checkResilience
	// ran just before the previous teardown); the mirror's predictions
	// restart with it.
	h.resetResilienceExpectations()
	return nil
}

// Run executes the scenario and returns a summary, or the first invariant
// violation as a *Violation error carrying the seed and a step trace.
func (h *Harness) Run() (Result, error) {
	if err := h.buildEngine(); err != nil {
		return Result{}, err
	}
	if err := h.boot(); err != nil {
		return Result{}, err
	}
	steps := h.scen.Steps()
	for s := 0; s < steps; s++ {
		h.step = s
		// The hung-trainer fault latches onto the first scheduled retrain at
		// or after its step: the target is resolved fresh each step so an
		// earlier fault (rollback, restore) pinning a watermark defers
		// rather than invalidates it.
		h.hungNow = ""
		if h.hungStep >= 0 && !h.hungDone && s >= h.hungStep {
			h.hungNow = h.chooseHungTarget()
		}
		for _, name := range h.names {
			st := h.mirror[name]
			if st.dead {
				continue
			}
			if err := h.stepSeries(st); err != nil {
				return Result{}, err
			}
		}
		// The twin (restored at the previous step's crash) has now seen one
		// full step of identical traffic; its job is done.
		if h.twin != nil {
			h.discardTwin()
		}
		for _, f := range h.scen.Faults {
			if f.Step != s {
				continue
			}
			if err := h.applyFault(f); err != nil {
				return Result{}, err
			}
		}
	}
	return h.finalize()
}

// boot creates every series, loads BootWeeks of history, labels it through
// the simulated operator, trains the first model and awaits its publication.
func (h *Harness) boot() error {
	h.step = -1
	for _, name := range h.names {
		st := h.mirror[name]
		// The sim deliberately keeps the default EWMA cThld predictor: the
		// manifest invariant pins the live threshold bitwise against the
		// published one after rollbacks and warm restores, and the EVT
		// predictor moves its threshold on every served point by design —
		// that pin would no longer hold. EVT's own behavior is locked down by
		// core's predictor tests and the engine's zero-alloc pins.
		if err := h.eng.Create(name, engine.SeriesConfig{
			IntervalSeconds: int(st.spec.Profile.Interval / time.Second),
			Start:           st.data.Series.Start,
			Trees:           10,
			WebhookURL:      "sim://" + name,
			RetrainEvery:    st.ppw,
		}); err != nil {
			return fmt.Errorf("simtest: create %s: %w", name, err)
		}
		bootN := h.scen.BootWeeks * st.ppw
		for lo := 0; lo < bootN; lo += st.ppw {
			if err := h.appendChecked(st, st.ppw); err != nil {
				return err
			}
			_ = lo
		}
		if err := h.labelRange(st, 0, bootN); err != nil {
			return err
		}
		res, err := h.eng.Train(context.Background(), name)
		if err != nil {
			return h.fail("boot_train", "series %s: boot training failed: %v", name, err)
		}
		// The synchronous Train also fired the TrainDone hook; fold it in and
		// wait for the asynchronous publication.
		ev, err := h.awaitTrain(name)
		if err != nil {
			return err
		}
		if ev.err != nil {
			return h.fail("boot_train", "series %s: TrainDone reported %v", name, ev.err)
		}
		st.trained = true
		st.pointsAtTrain = res.Points
		h.trains++
		if err := h.awaitPublishInto(st, res); err != nil {
			return err
		}
		if err := h.checkManifest(st, res.CThld, true); err != nil {
			return err
		}
		if err := h.eng.VerifyFeatureCache(name); err != nil {
			return h.fail("extract_cache", "series %s: incremental extraction diverges from cold after boot: %v", name, err)
		}
		h.tracef("boot %s: %d points, cthld=%.4f", name, res.Points, res.CThld)
	}
	return nil
}

// appendChecked appends the next n points of st's generated data and checks
// the per-append invariants (whole batch accepted, persisted, exactly one
// verdict per point with contiguous indices — or none before training).
func (h *Harness) appendChecked(st *seriesState, n int) error {
	name := st.spec.Name
	base := st.total
	if base+n > st.data.Series.Len() {
		return fmt.Errorf("simtest: scenario ran out of generated data for %s", name)
	}
	pts := make([]engine.Point, n)
	for i := range pts {
		pts[i] = engine.Point{
			Timestamp: st.data.Series.TimeAt(base + i),
			Value:     st.data.Series.Values[base+i],
		}
	}
	expectTrain := st.trained && base+n-st.pointsAtTrain >= st.ppw

	res, err := h.eng.Append(context.Background(), name, pts, nil)
	if err != nil {
		return h.fail("append", "series %s: append of %d points at %d rejected: %v", name, n, base, err)
	}
	if h.MutateDropVerdict != nil {
		h.MutateDropVerdict(name, h.step, &res)
	}
	if res.Appended != n || res.Total != base+n {
		return h.fail("append", "series %s: appended %d/%d, total %d want %d", name, res.Appended, n, res.Total, base+n)
	}
	if !res.Persisted {
		return h.fail("wal", "series %s: append at %d not persisted", name, base)
	}
	if res.Degraded {
		return h.fail("degraded", "series %s: append at %d served degraded verdicts outside a scheduled slow-disk window", name, base)
	}
	if st.trained {
		if len(res.Verdicts) != n {
			return h.fail("verdicts", "series %s: %d verdicts for %d appended points at base %d — every appended point must receive exactly one verdict across retrain/restore/rollback swaps",
				name, len(res.Verdicts), n, base)
		}
		for i, v := range res.Verdicts {
			if v.Index != base+i {
				return h.fail("verdicts", "series %s: verdict %d has index %d, want %d (contiguous from %d)", name, i, v.Index, base+i, base)
			}
			if math.IsNaN(v.Probability) || v.Probability < 0 || v.Probability > 1 {
				return h.fail("verdicts", "series %s: verdict at %d has probability %v outside [0,1]", name, v.Index, v.Probability)
			}
			// The predicted-type field is constrained, not pinned: a valid
			// class name on anomalous verdicts only (abstain and no-head are
			// empty), never on normal ones.
			if _, ok := core.ParseClass(v.Type); !ok {
				return h.fail("verdicts", "series %s: verdict at %d carries unparsable type %q", name, v.Index, v.Type)
			}
			if !v.Anomalous && v.Type != "" {
				return h.fail("verdicts", "series %s: normal verdict at %d carries type %q", name, v.Index, v.Type)
			}
			if v.Anomalous {
				st.anomSinceRestore++
			}
		}
	} else if len(res.Verdicts) != 0 {
		return h.fail("verdicts", "series %s: %d verdicts before first training", name, len(res.Verdicts))
	}

	// Restore-determinism probe: the twin must produce bitwise-identical
	// verdicts on identical traffic.
	if h.twin != nil {
		tres, terr := h.twin.eng.Append(context.Background(), name, pts, nil)
		if terr != nil {
			return h.fail("restore_determinism", "series %s: twin rejected the probe batch: %v", name, terr)
		}
		if len(tres.Verdicts) != len(res.Verdicts) {
			return h.fail("restore_determinism", "series %s: twin issued %d verdicts, live %d, for identical traffic after identical restore",
				name, len(tres.Verdicts), len(res.Verdicts))
		}
		for i := range res.Verdicts {
			a, b := res.Verdicts[i], tres.Verdicts[i]
			if a.Index != b.Index || a.Anomalous != b.Anomalous ||
				math.Float64bits(a.Probability) != math.Float64bits(b.Probability) ||
				a.Type != b.Type {
				return h.fail("restore_determinism", "series %s: verdict %d diverges between identically restored engines: live %+v vs twin %+v",
					name, i, a, b)
			}
		}
	}

	st.total += n
	h.ingestSinceRestore += n
	for i := 0; i < n; i++ {
		st.labels = append(st.labels, false)
		st.types = append(st.types, 0)
	}

	if expectTrain {
		after := h.afterWeeklyTrain
		if h.stallArmed {
			after = h.afterStalledTrain
		}
		if err := after(st); err != nil {
			return err
		}
	}
	// Weekly labeling of the just-completed week (labels always trail the
	// retrain that the week's final append triggered, like a real operator).
	if st.total%st.ppw == 0 && st.total > st.labeledTo && h.step >= 0 {
		if err := h.labelRange(st, st.labeledTo, st.total); err != nil {
			return err
		}
	}
	return nil
}

// stepSeries drives one step of one series.
func (h *Harness) stepSeries(st *seriesState) error {
	if st.spec.Name == h.hungNow {
		return h.stepHungTrainer(st)
	}
	return h.appendChecked(st, h.scen.BatchPoints)
}

// afterWeeklyTrain quiesces an automatic retrain that the last append must
// have scheduled, then checks the training-path invariants.
func (h *Harness) afterWeeklyTrain(st *seriesState) error {
	name := st.spec.Name
	ev, err := h.awaitTrain(name)
	if err != nil {
		return err
	}
	if ev.err != nil {
		return h.fail("retrain", "series %s: automatic retrain failed: %v", name, ev.err)
	}
	if ev.res.Points != st.total {
		return h.fail("retrain", "series %s: retrain saw %d points, stream head is %d (snapshot raced the single-threaded driver)",
			name, ev.res.Points, st.total)
	}
	st.pointsAtTrain = ev.res.Points
	h.trains++
	if err := h.awaitPublishInto(st, ev.res); err != nil {
		return err
	}
	if err := h.checkManifest(st, ev.res.CThld, true); err != nil {
		return err
	}
	if err := h.eng.VerifyFeatureCache(name); err != nil {
		return h.fail("extract_cache", "series %s: incremental extraction diverges from cold after retrain: %v", name, err)
	}
	h.tracef("step %d: %s retrained at %d points, cthld=%.4f", h.step, name, ev.res.Points, ev.res.CThld)
	return nil
}

// awaitPublishInto waits for the asynchronous publication of the training
// round res and records it in the mirror.
func (h *Harness) awaitPublishInto(st *seriesState, res engine.TrainResult) error {
	name := st.spec.Name
	pub, err := h.awaitPub(name)
	if err != nil {
		return err
	}
	if pub.err != nil {
		return h.fail("publish", "series %s: model publication failed: %v", name, pub.err)
	}
	st.pubs = append(st.pubs, pubRecord{gen: pub.gen, trainedAt: res.TrainedAt, points: res.Points, cthld: res.CThld})
	if h.MutatePartialPublish != nil {
		h.MutatePartialPublish(name, pub.gen, filepath.Join(h.modelDir, name))
	}
	return nil
}

// labelRange pushes the simulated operator's (noisy) labels for truth range
// [lo, hi) and cross-checks the engine's anomalous-point count against the
// mirror. On a typed series the operator also names each window's anomaly
// class — the dominant injected class under the (jittered) window, the way a
// real operator recognizes the shape rather than the exact boundaries; a
// noisy window overlapping no injection stays untyped.
func (h *Harness) labelRange(st *seriesState, lo, hi int) error {
	name := st.spec.Name
	noisy := st.spec.Operator.Label(st.data.Labels[lo:hi])
	var windows []engine.Window
	var classes []uint8
	for _, w := range noisy.Windows() {
		start, end := w.Start+lo, w.End+lo
		if start < 0 {
			start = 0
		}
		if end > st.total {
			end = st.total
		}
		if start >= end {
			continue
		}
		ew := engine.Window{Start: start, End: end, Anomalous: true}
		var class uint8
		if st.spec.Typed {
			class = dominantClass(st.truth, start, end)
			if class != 0 {
				ew.Type = core.AnomalyClass(class).Wire()
			}
		}
		windows = append(windows, ew)
		classes = append(classes, class)
	}
	st.labeledTo = hi
	if len(windows) == 0 {
		return nil
	}
	res, err := h.eng.Label(context.Background(), name, windows)
	if err != nil {
		return h.fail("label", "series %s: labeling [%d,%d) rejected: %v", name, lo, hi, err)
	}
	for wi, w := range windows {
		if w.Type != "" {
			st.typedSeen = true
		}
		for i := w.Start; i < w.End; i++ {
			st.labels[i] = true
			// An untyped anomalous window writes class 0, which matches the
			// engine's clear-on-plain-label rule because every labeled range
			// here is fresh (labels trail the appends, windows are disjoint).
			st.types[i] = classes[wi]
		}
	}
	if want := countTrue(st.labels); res.AnomalousPoints != want {
		return h.fail("label", "series %s: engine reports %d anomalous points, mirror %d", name, res.AnomalousPoints, want)
	}
	return nil
}

// dominantClass returns the most frequent nonzero injected class over
// truth[start:end), or 0 when the range overlaps no typed injection.
func dominantClass(truth []uint8, start, end int) uint8 {
	var counts [6]int
	for i := start; i < end && i < len(truth); i++ {
		if c := truth[i]; int(c) < len(counts) {
			counts[c]++
		}
	}
	best, n := uint8(0), 0
	for c := 1; c < len(counts); c++ {
		if counts[c] > n {
			best, n = uint8(c), counts[c]
		}
	}
	return best
}

// applyFault dispatches one scheduled fault.
func (h *Harness) applyFault(f FaultEvent) error {
	switch f.Kind {
	case FaultWALCorrupt:
		return h.faultWALCorrupt(f.Series)
	case FaultTornArtifact:
		return h.faultTornArtifact()
	case FaultTornTypeArtifact:
		return h.faultTornTypeArtifact()
	case FaultRollback:
		return h.faultRollback()
	case FaultCrashRestore:
		return h.crashRestore()
	case FaultSlowDisk:
		return h.faultSlowDisk()
	case FaultIngestFlood:
		return h.faultIngestFlood()
	case FaultHungTrainer:
		// Applied in-step: stepSeries wedges the scheduled retrain of the
		// first qualifying series at or after the fault's step.
		return nil
	default:
		return fmt.Errorf("simtest: unknown fault %v", f.Kind)
	}
}

// faultWALCorrupt flips a byte inside the XOR bitstream of the target's
// newest points frame — mid-segment damage behind the write head. The live
// engine must keep serving; the next restore must quarantine exactly this
// series.
func (h *Harness) faultWALCorrupt(idx int) error {
	st := h.mirror[h.names[idx%len(h.names)]]
	if st.dead || st.corrupted {
		h.tracef("step %d: wal_corrupt skipped (%s already %s)", h.step, st.spec.Name, deadOrCorrupt(st))
		return nil
	}
	if err := tsdb.CorruptPointsFrame(h.dataDir, st.spec.Name); err != nil {
		return fmt.Errorf("simtest: corrupt %s: %w", st.spec.Name, err)
	}
	st.corrupted = true
	h.tracef("step %d: wal_corrupt %s (points frame bit flip)", h.step, st.spec.Name)
	// The damage must be detectable right now by an independent reader.
	probe, err := tsdb.Open(h.dataDir)
	if err != nil {
		return err
	}
	defer probe.Close()
	if _, lerr := probe.Load(st.spec.Name); lerr == nil {
		return h.fail("wal", "series %s: WAL loads cleanly after in-place corruption — checksums must catch a flipped byte", st.spec.Name)
	}
	return nil
}

// faultTornArtifact flips a byte in the current model artifact of the first
// healthy series, simulating torn storage under the registry.
func (h *Harness) faultTornArtifact() error {
	for _, name := range h.names {
		st := h.mirror[name]
		if st.dead || st.corrupted || len(st.pubs) == 0 {
			continue
		}
		man, err := h.eng.ModelManifest(name)
		if err != nil {
			return h.fail("manifest", "series %s: manifest unreadable before torn-artifact fault: %v", name, err)
		}
		var file string
		for _, g := range man.Generations {
			if g.Gen == man.Current {
				file = g.File
			}
		}
		if file == "" {
			return h.fail("manifest", "series %s: current generation %d missing from manifest", name, man.Current)
		}
		path := filepath.Join(h.modelDir, name, file)
		if err := faultinject.FlipByte(path, -3); err != nil {
			return fmt.Errorf("simtest: tear %s: %w", path, err)
		}
		h.tornSeries, h.tornPubLen = name, len(st.pubs)
		h.tracef("step %d: torn_artifact %s gen %d", h.step, name, man.Current)
		return nil
	}
	h.tracef("step %d: torn_artifact skipped (no healthy published series)", h.step)
	return nil
}

// faultTornTypeArtifact flips a byte in the current anomaly-type artifact of
// the first healthy series that has one. The next restore must quarantine
// only that kind: the generation keeps serving verdicts warm, with the type
// head gone until the next publish.
func (h *Harness) faultTornTypeArtifact() error {
	for _, name := range h.names {
		st := h.mirror[name]
		if st.dead || st.corrupted || len(st.pubs) == 0 {
			continue
		}
		man, err := h.eng.ModelManifest(name)
		if err != nil {
			return h.fail("manifest", "series %s: manifest unreadable before torn-type fault: %v", name, err)
		}
		cur := manifestCurrent(man)
		if cur == nil {
			return h.fail("manifest", "series %s: current generation %d missing from manifest", name, man.Current)
		}
		ref := cur.Ref(modelreg.KindType)
		if ref == nil {
			continue // untyped series publish verdict-only generations
		}
		path := filepath.Join(h.modelDir, name, ref.File)
		if err := faultinject.FlipByte(path, -3); err != nil {
			return fmt.Errorf("simtest: tear %s: %w", path, err)
		}
		h.tornTypeSeries, h.tornTypePubLen = name, len(st.pubs)
		h.tracef("step %d: torn_type_artifact %s gen %d", h.step, name, man.Current)
		return nil
	}
	h.tracef("step %d: torn_type_artifact skipped (no healthy series with a type artifact)", h.step)
	return nil
}

// faultRollback rolls the first eligible series back one generation and
// checks the live hot-swap took effect (manifest and live cThld agree).
func (h *Harness) faultRollback() error {
	for _, name := range h.names {
		st := h.mirror[name]
		if st.dead || len(st.pubs) < 2 {
			continue
		}
		man, err := h.eng.RollbackModel(context.Background(), name)
		if err != nil {
			return h.fail("rollback", "series %s: rollback rejected with %d published generations: %v", name, len(st.pubs), err)
		}
		h.rollbacks++
		cur := manifestCurrent(man)
		if cur == nil {
			return h.fail("manifest", "series %s: post-rollback manifest current gen %d has no entry", name, man.Current)
		}
		status, err := h.eng.Status(context.Background(), name)
		if err != nil {
			return err
		}
		if math.Float64bits(status.CThld) != math.Float64bits(cur.CThld) {
			return h.fail("rollback", "series %s: live cthld %v but rolled-back generation %d published %v — hot-swap did not take effect",
				name, status.CThld, cur.Gen, cur.CThld)
		}
		if !status.TrainedAt.Equal(cur.TrainedAt) {
			return h.fail("rollback", "series %s: live model trained at %v, rolled-back generation at %v", name, status.TrainedAt, cur.TrainedAt)
		}
		// Both heads must follow the rollback: the type head serves exactly
		// when the rolled-back generation has a loadable type artifact.
		if wantTyped := typeArtifactLoadable(h.modelDir, name, cur); status.TypedModel != wantTyped {
			return h.fail("rollback", "series %s: live type head %v but rolled-back generation %d has type artifact %v — the hot-swap moved only one head",
				name, status.TypedModel, cur.Gen, wantTyped)
		}
		// The engine pins the retrain watermark to the stream head so the
		// rollback is not immediately republished over.
		st.pointsAtTrain = st.total
		if err := h.checkManifest(st, cur.CThld, false); err != nil {
			return err
		}
		h.tracef("step %d: rollback %s to gen %d", h.step, name, cur.Gen)
		return nil
	}
	h.tracef("step %d: rollback skipped (no series with 2 generations)", h.step)
	return nil
}

// finalize runs the end-of-scenario checks and shuts everything down.
func (h *Harness) finalize() (Result, error) {
	if h.twin != nil {
		h.discardTwin()
	}
	if h.hungStep >= 0 && !h.hungDone {
		return Result{}, h.fail("watchdog", "hung-trainer fault scheduled from step %d but no qualifying scheduled retrain was found to wedge", h.hungStep)
	}
	if err := h.preCloseChecks(); err != nil {
		return Result{}, err
	}
	h.eng.Close()
	h.store.Close()
	if err := h.assertQuiescent(); err != nil {
		return Result{}, err
	}
	if err := h.checkWALs(); err != nil {
		return Result{}, err
	}
	if dups := h.rec.duplicates(); len(dups) != 0 {
		return Result{}, h.fail("alerts", "duplicate deliveries beyond the retry contract: %v", dups)
	}
	attempts, failures := h.rec.stats()
	return Result{
		Steps:            h.scen.Steps(),
		Trains:           h.trains,
		Crashes:          h.crashes,
		Rollbacks:        h.rollbacks,
		DeliveredEvents:  h.rec.delivered(),
		DeliveryAttempts: attempts,
		DeliveryRetries:  failures,
	}, nil
}

func deadOrCorrupt(st *seriesState) string {
	if st.dead {
		return "dead"
	}
	return "corrupted"
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// typeArtifactLoadable reports whether the generation names a type artifact
// whose file is still on disk (not quarantined to *.corrupt).
func typeArtifactLoadable(modelDir, series string, g *modelreg.Generation) bool {
	ref := g.Ref(modelreg.KindType)
	if ref == nil {
		return false
	}
	_, err := os.Stat(filepath.Join(modelDir, series, ref.File))
	return err == nil
}

// manifestCurrent returns the manifest entry Current points at, or nil.
func manifestCurrent(man modelreg.Manifest) *modelreg.Generation {
	for i := range man.Generations {
		if man.Generations[i].Gen == man.Current {
			return &man.Generations[i]
		}
	}
	return nil
}

// tracef appends one line to the step trace.
func (h *Harness) tracef(format string, args ...any) {
	h.trace = append(h.trace, fmt.Sprintf(format, args...))
}
