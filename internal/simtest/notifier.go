package simtest

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"opprentice/internal/alerting"
)

// eventKey identifies one incident event for duplicate detection: a series
// can legitimately emit an open and a resolved event for the same incident
// start, but never two of the same state.
type eventKey struct {
	series string
	state  string
	start  time.Time
}

// recorder is the simulation's in-process webhook endpoint: it fails each
// delivery attempt with a seeded probability (exercising the pipeline's
// retry contract) and records every successful delivery. One recorder is
// shared by all series pipelines of the live engine across restarts, so the
// no-duplicates invariant spans crash+restore boundaries. Safe for
// concurrent use.
type recorder struct {
	mu       sync.Mutex
	rng      *rand.Rand
	failProb float64
	counts   map[eventKey]int
	attempts int
	failures int
}

func newRecorder(seed int64, failProb float64) *recorder {
	return &recorder{
		rng:      rand.New(rand.NewSource(seed)),
		failProb: failProb,
		counts:   make(map[eventKey]int),
	}
}

// Notify implements alerting.Notifier.
func (r *recorder) Notify(_ context.Context, e alerting.Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts++
	if r.rng.Float64() < r.failProb {
		r.failures++
		return fmt.Errorf("simtest: simulated delivery failure")
	}
	r.counts[eventKey{series: e.Series, state: e.State, start: e.Start}]++
	return nil
}

// duplicates returns every event key delivered more than once.
func (r *recorder) duplicates() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var dups []string
	for k, n := range r.counts {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("%s/%s@%s delivered %d times", k.series, k.state, k.start.Format(time.RFC3339), n))
		}
	}
	return dups
}

// delivered returns how many distinct events were delivered.
func (r *recorder) delivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counts)
}

// stats returns (attempts, failed attempts).
func (r *recorder) stats() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts, r.failures
}
