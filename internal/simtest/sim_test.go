package simtest

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opprentice/internal/engine"
)

var (
	seedFlag = flag.Int64("seed", 1, "scenario seed for TestSimSeed (reproduce a reported violation)")
	longFlag = flag.Bool("sim.long", false, "roughly double the driven length (soak mode)")
)

// matrixSeeds are the fixed seeds `make sim` runs. Every generated scenario
// contains at least one crash+restore, one rollback, one torn artifact
// (verdict or type head), one ingest flood, one slow-disk stall and one hung
// trainer; the optional faults (WAL corruption, early crashes, panicking
// detectors, and which artifact kind is torn) vary across the seeds, so the
// matrix as a whole covers every fault kind.
var matrixSeeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}

// runScenario executes one scenario to completion and fails the test with
// the violation's full report (seed, step, trace, repro command) otherwise.
func runScenario(t *testing.T, seed int64, long bool) Result {
	t.Helper()
	scen := GenScenario(seed, long)
	h, err := NewHarness(scen, t.TempDir(), long)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatalf("%v", err)
	}
	if res.Trains == 0 || res.Crashes == 0 || res.Rollbacks == 0 {
		t.Fatalf("scenario did not exercise the acceptance floor: %+v", res)
	}
	t.Logf("seed %d: %d steps, %d trains, %d crashes, %d rollbacks, %d events delivered (%d attempts, %d retried)",
		seed, res.Steps, res.Trains, res.Crashes, res.Rollbacks,
		res.DeliveredEvents, res.DeliveryAttempts, res.DeliveryRetries)
	return res
}

// TestSimMatrix drives the fixed seed matrix. Each seed is an independent
// end-to-end simulation of the whole engine under its own fault schedule.
func TestSimMatrix(t *testing.T) {
	seeds := matrixSeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runScenario(t, seed, *longFlag)
		})
	}
}

// TestSimSeed replays one scenario by seed: the reproduction entry point
// named in every Violation report.
func TestSimSeed(t *testing.T) {
	runScenario(t, *seedFlag, *longFlag)
}

// TestSimCatchesVerdictLoss is the oracle's self-test: an engine bug that
// loses one verdict (emulated by mutating the append result) must be caught
// as a seed-reproducible verdicts violation, not silently absorbed.
func TestSimCatchesVerdictLoss(t *testing.T) {
	scen := GenScenario(1, false)
	h, err := NewHarness(scen, t.TempDir(), false)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	h.MutateDropVerdict = func(series string, step int, res *engine.AppendResult) {
		if step == 2 && len(res.Verdicts) > 0 {
			res.Verdicts = res.Verdicts[:len(res.Verdicts)-1]
		}
	}
	_, err = h.Run()
	if err == nil {
		t.Fatalf("harness absorbed a lost verdict without a violation")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("lost verdict reported as %T, want *Violation: %v", err, err)
	}
	if v.Invariant != "verdicts" {
		t.Fatalf("lost verdict blamed on invariant %q, want %q: %v", v.Invariant, "verdicts", err)
	}
	if v.Seed != 1 || v.Step != 2 {
		t.Fatalf("violation carries seed %d step %d, want seed 1 step 2", v.Seed, v.Step)
	}
	if !strings.Contains(err.Error(), "go test ./internal/simtest -run TestSimSeed -seed=1") {
		t.Fatalf("violation report lacks the reproduction command:\n%v", err)
	}
}

// TestSimCatchesPartialPublish is the multi-kind manifest invariant's
// self-test: a publish that loses one kind's artifact behind the manifest
// (emulated by deleting a generation's anomaly-type file right after its
// publication) must be caught as a seed-reproducible manifest violation
// naming the missing kind, not silently absorbed.
func TestSimCatchesPartialPublish(t *testing.T) {
	scen := GenScenario(1, false)
	h, err := NewHarness(scen, t.TempDir(), false)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	deleted := false
	h.MutatePartialPublish = func(series string, gen uint64, dir string) {
		if deleted {
			return
		}
		// Untyped series publish no atype artifact; the first typed series'
		// publication is the one this mutation tears apart.
		path := filepath.Join(dir, fmt.Sprintf("%012d.atype.model", gen))
		if os.Remove(path) == nil {
			deleted = true
		}
	}
	_, err = h.Run()
	if err == nil {
		t.Fatalf("harness absorbed a partial multi-kind publish without a violation")
	}
	if !deleted {
		t.Fatal("mutation never found an anomaly-type artifact to delete")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("partial publish reported as %T, want *Violation: %v", err, err)
	}
	if v.Invariant != "manifest" {
		t.Fatalf("partial publish blamed on invariant %q, want %q: %v", v.Invariant, "manifest", err)
	}
	if !strings.Contains(v.Detail, "atype") {
		t.Fatalf("violation does not name the missing kind:\n%v", err)
	}
}

// TestSimCatchesWatchdogOutage is the stall invariant's self-test: with the
// training watchdog disabled through its runtime hook (a zero deadline), the
// gated round never completes and the harness must report a watchdog
// violation instead of hanging or passing.
func TestSimCatchesWatchdogOutage(t *testing.T) {
	scen := GenScenario(1, false)
	h, err := NewHarness(scen, t.TempDir(), false)
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	h.DisableWatchdog = true
	_, err = h.Run()
	if err == nil {
		t.Fatalf("harness absorbed a disabled watchdog without a violation")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("watchdog outage reported as %T, want *Violation: %v", err, err)
	}
	if v.Invariant != "watchdog" {
		t.Fatalf("watchdog outage blamed on invariant %q, want %q: %v", v.Invariant, "watchdog", err)
	}
}
