package simtest

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"time"

	"opprentice/internal/engine"
	"opprentice/internal/kpigen"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/tsdb"
)

// The regime harness drives a single-series engine with the active-learning
// subsystem ENABLED through a regime change — a level shift in the KPI right
// after the drift detector's reference window fills — and checks the
// drift-specific invariants the classic matrix (which runs with drift off,
// see engineConfig) cannot:
//
//   - under a regime change, a drift-armed retrain fires BEFORE the weekly
//     watermark tick would (the drive stays under one week of points);
//   - on stationary traffic the drift detector stays silent: zero
//     drift-armed retrains over the same drive;
//   - exactly one verdict per appended point, contiguous, across the
//     drift-triggered monitor swap;
//   - label queries surfaced by the queue can be answered mid-drive and the
//     answer lands durably (it survives the restore below);
//   - snapshot → restore → replay stays bit-identical: two engines restored
//     from byte-identical disk state after the drift retrain produce
//     bitwise-identical verdicts on identical probe traffic.
//
// A mutation self-test (TestSimRegimeMutation*) reruns the shift scenario
// with drift disabled and asserts the early retrain does NOT happen — the
// invariant fails for exactly the right reason, so it provably bites.

// regimeDriveDays is the post-boot drive length: short of a week on purpose,
// so any retrain during the drive is necessarily drift-armed.
const regimeDriveDays = 6

// regimeDriftThreshold is the PSI threshold the regime scenarios pin. The
// engine default (0.25, active.DefaultDriftThreshold) is a sensitivity
// choice: with day-sized windows a single burst of ordinary anomalies can
// clear it, which is fine in production (the retrain is incremental and
// cheap) but makes "stationary ⇒ zero drift retrains" seed-dependent. A full
// regime change lands PSI in the multiple-nats range — orders of magnitude
// above burst noise — so 1.0 separates the two cleanly on every seed.
const regimeDriftThreshold = 1.0

// regimeOutcome summarizes one regime scenario run.
type regimeOutcome struct {
	driftRetrains   int64 // engine counter at the end of the drive
	firstDriftAt    int   // points since last train when the first drift retrain was armed (-1: never)
	trains          int   // TrainDone events observed during the drive
	queriesAnswered int64 // engine counter at the end of the drive
	pendingQueries  int   // queue depth observed mid-drive, before answering
}

// regimeScenario parameterizes one run.
type regimeScenario struct {
	seed           int64
	shift          bool    // apply the level shift after the reference window fills
	driftThreshold float64 // 0 = regimeDriftThreshold; negative = disabled (mutation self-test)
}

// runRegime executes one regime scenario inside baseDir and returns the
// outcome, or an error describing the first violated invariant.
func runRegime(scen regimeScenario, baseDir string) (regimeOutcome, error) {
	out := regimeOutcome{firstDriftAt: -1}
	dataDir := filepath.Join(baseDir, "data")
	modelDir := filepath.Join(baseDir, "models")
	for _, dir := range []string{dataDir, modelDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return out, err
		}
	}
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	if scen.driftThreshold == 0 {
		scen.driftThreshold = regimeDriftThreshold
	}

	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10 // 8 boot + 6 drive days + 1 probe day, with slack
	p.Name = "regime"
	d := kpigen.Generate(p, scen.seed)
	ppd, err := d.Series.PointsPerDay()
	if err != nil {
		return out, err
	}
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		return out, err
	}
	bootN := 8 * ppw
	// The level shift begins one day after the boot training round, so the
	// drift detector's reference window (one day) captures only pre-shift
	// votes and the live windows only post-shift ones.
	shiftAt := bootN + ppd

	trainCh := make(chan trainEvent, 64)
	pubCh := make(chan pubEvent, 64)
	newConfig := func(store *tsdb.Store, models *modelreg.Registry, hooked bool) engine.Config {
		cfg := engine.Config{
			Log:            log,
			Store:          store,
			Models:         models,
			RetrainWorkers: 1,
			RestoreWorkers: 1,
			DriftThreshold: scen.driftThreshold,
			DriftWindow:    ppd,
		}
		if hooked {
			cfg.Hooks = engine.Hooks{
				TrainDone: func(series string, res engine.TrainResult, err error) {
					trainCh <- trainEvent{series: series, res: res, err: err}
				},
				PublishDone: func(series string, gen uint64, err error) {
					pubCh <- pubEvent{series: series, gen: gen, err: err}
				},
			}
		}
		return cfg
	}

	store, err := tsdb.Open(dataDir)
	if err != nil {
		return out, err
	}
	models, err := modelreg.Open(modelreg.Config{Dir: modelDir, Keep: 4})
	if err != nil {
		return out, err
	}
	eng := engine.New(newConfig(store, models, true))

	if err := eng.Create(p.Name, engine.SeriesConfig{
		IntervalSeconds: int(p.Interval / time.Second),
		Start:           d.Series.Start,
		Trees:           10,
		RetrainEvery:    ppw,
	}); err != nil {
		return out, err
	}

	// valueAt applies the regime change: a 60% level shift from shiftAt on.
	valueAt := func(i int) float64 {
		v := d.Series.Values[i]
		if scen.shift && i >= shiftAt {
			v *= 1.6
		}
		return v
	}
	appendDay := func(e *engine.Engine, base int) (engine.AppendResult, error) {
		pts := make([]engine.Point, ppd)
		for i := range pts {
			pts[i] = engine.Point{Timestamp: d.Series.TimeAt(base + i), Value: valueAt(base + i)}
		}
		return e.Append(context.Background(), p.Name, pts, nil)
	}

	// Boot: 8 weeks of history, ground-truth labels, one synchronous train.
	for base := 0; base < bootN; base += ppd {
		if _, err := appendDay(eng, base); err != nil {
			return out, fmt.Errorf("regime: boot append at %d: %w", base, err)
		}
	}
	var windows []engine.Window
	for _, w := range d.Labels.Windows() {
		if w.End <= bootN {
			windows = append(windows, engine.Window{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if _, err := eng.Label(context.Background(), p.Name, windows); err != nil {
		return out, fmt.Errorf("regime: boot label: %w", err)
	}
	if _, err := eng.Train(context.Background(), p.Name); err != nil {
		return out, fmt.Errorf("regime: boot train: %w", err)
	}
	if err := drainEvent(trainCh, "TrainDone"); err != nil {
		return out, err
	}
	if err := drainEvent(pubCh, "PublishDone"); err != nil {
		return out, err
	}
	pointsAtTrain := bootN

	// Drive: one day per step, six days — strictly inside the weekly tick.
	for day := 0; day < regimeDriveDays; day++ {
		base := bootN + day*ppd
		res, err := appendDay(eng, base)
		if err != nil {
			return out, fmt.Errorf("regime: drive append day %d: %w", day, err)
		}
		if len(res.Verdicts) != ppd {
			return out, fmt.Errorf("regime: day %d: %d verdicts for %d appended points — exactly one verdict per point must survive the drift swap",
				day, len(res.Verdicts), ppd)
		}
		for i, v := range res.Verdicts {
			if v.Index != base+i {
				return out, fmt.Errorf("regime: day %d: verdict %d has index %d, want contiguous %d", day, i, v.Index, base+i)
			}
			if math.IsNaN(v.Probability) || v.Probability < 0 || v.Probability > 1 {
				return out, fmt.Errorf("regime: day %d: probability %v outside [0,1] at %d", day, v.Probability, v.Index)
			}
		}

		// First drift-armed round: record how far past the last train it
		// fired, then quiesce it so the monitor swap lands deterministically
		// between days.
		if c := eng.Counters(); c.DriftRetrains > out.driftRetrains {
			out.driftRetrains = c.DriftRetrains
			if out.firstDriftAt < 0 {
				out.firstDriftAt = base + ppd - pointsAtTrain
			}
			ev, err := awaitEvent(trainCh, "TrainDone")
			if err != nil {
				return out, err
			}
			if ev != nil && ev.err != nil {
				return out, fmt.Errorf("regime: drift-armed retrain failed: %v", ev.err)
			}
			out.trains++
			pointsAtTrain = bootN + (day+1)*ppd
			if err := drainEvent(pubCh, "PublishDone"); err != nil {
				return out, err
			}
		}

		// Mid-drive, before any shift effect can drain the queue via retrain:
		// answer the most uncertain pending query so the drift retrain (and
		// the restore below) sees a durable query-sourced label.
		if day == 1 {
			qs, err := eng.Queries(context.Background(), p.Name)
			if err != nil {
				return out, fmt.Errorf("regime: queries: %w", err)
			}
			out.pendingQueries = len(qs)
			if len(qs) > 0 {
				q := qs[0]
				anomalous := overlapsTruth(d, q.Start, q.End)
				if _, err := eng.AnswerQuery(context.Background(), p.Name, q.Start, q.End, anomalous); err != nil {
					return out, fmt.Errorf("regime: answer query [%d,%d): %w", q.Start, q.End, err)
				}
			}
		}
	}
	out.queriesAnswered = eng.Counters().QueriesAnswered

	// Snapshot → restore → replay: close everything, copy the disk state,
	// restore two engines (original dirs and the byte-identical copy) and
	// compare one probe day of verdicts bitwise.
	eng.Close()
	store.Close()
	twinData := filepath.Join(baseDir, "twin", "data")
	twinModels := filepath.Join(baseDir, "twin", "models")
	if err := copyTree(dataDir, twinData); err != nil {
		return out, fmt.Errorf("regime: snapshot data: %w", err)
	}
	if err := copyTree(modelDir, twinModels); err != nil {
		return out, fmt.Errorf("regime: snapshot models: %w", err)
	}
	probeBase := bootN + regimeDriveDays*ppd
	var probes [2][]engine.Verdict
	for i, dirs := range [][2]string{{dataDir, modelDir}, {twinData, twinModels}} {
		st, err := tsdb.Open(dirs[0])
		if err != nil {
			return out, err
		}
		reg, err := modelreg.Open(modelreg.Config{Dir: dirs[1], Keep: 4})
		if err != nil {
			st.Close()
			return out, err
		}
		e := engine.New(newConfig(st, reg, false))
		if _, err := e.Restore(context.Background()); err != nil {
			e.Close()
			st.Close()
			return out, fmt.Errorf("regime: restore (%d): %w", i, err)
		}
		res, err := appendDay(e, probeBase)
		if err != nil {
			e.Close()
			st.Close()
			return out, fmt.Errorf("regime: probe append (%d): %w", i, err)
		}
		probes[i] = res.Verdicts
		e.Close()
		st.Close()
	}
	if len(probes[0]) != len(probes[1]) || len(probes[0]) != ppd {
		return out, fmt.Errorf("regime: restored engines issued %d and %d verdicts for %d identical probe points",
			len(probes[0]), len(probes[1]), ppd)
	}
	for i := range probes[0] {
		a, b := probes[0][i], probes[1][i]
		if a.Index != b.Index || a.Anomalous != b.Anomalous ||
			math.Float64bits(a.Probability) != math.Float64bits(b.Probability) {
			return out, fmt.Errorf("regime: restored engines diverge at probe verdict %d: %+v vs %+v — restore must be bit-identical after a drift-triggered swap",
				i, a, b)
		}
	}
	return out, nil
}

// overlapsTruth reports whether [start, end) touches a ground-truth anomaly.
func overlapsTruth(d *kpigen.Dataset, start, end int) bool {
	for i := start; i < end && i < len(d.Labels); i++ {
		if i >= 0 && d.Labels[i] {
			return true
		}
	}
	return false
}

// awaitEvent waits for one lifecycle event with a generous timeout.
func awaitEvent(ch chan trainEvent, what string) (*trainEvent, error) {
	select {
	case ev := <-ch:
		return &ev, nil
	case <-time.After(60 * time.Second):
		return nil, fmt.Errorf("regime: timed out waiting for %s", what)
	}
}

// drainEvent consumes exactly one event from a pubEvent/trainEvent channel.
func drainEvent[T any](ch chan T, what string) error {
	select {
	case <-ch:
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("regime: timed out waiting for %s", what)
	}
}
