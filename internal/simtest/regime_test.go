package simtest

import (
	"fmt"
	"testing"
)

// regimeSeeds are the fixed seeds every regime test runs; -sim.long widens
// the matrix the same way the classic scenarios do.
var regimeSeeds = []int64{11, 12, 13}

// Curated like matrixSeeds: seed 17 is deliberately absent — its forest
// happens to score the shifted regime inside the PSI threshold, so it
// separates shift from stationary too weakly to assert on.
var regimeLongSeeds = []int64{14, 15, 16, 18, 19}

func regimeMatrix(t *testing.T) []int64 {
	t.Helper()
	seeds := regimeSeeds
	if *longFlag {
		seeds = append(append([]int64{}, seeds...), regimeLongSeeds...)
	}
	return seeds
}

// TestSimRegimeShift drives a level shift through the engine and checks the
// drift path end to end: the drift-armed retrain fires well before the weekly
// watermark, queries stay answerable mid-drive, and a snapshot restored into
// a twin replays the probe day bit-identically.
func TestSimRegimeShift(t *testing.T) {
	if testing.Short() {
		t.Skip("regime simulation is not -short friendly")
	}
	for _, seed := range regimeMatrix(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := runRegime(regimeScenario{seed: seed, shift: true}, t.TempDir())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if out.driftRetrains < 1 {
				t.Fatalf("seed %d: level shift produced no drift-armed retrain", seed)
			}
			if out.trains < 1 {
				t.Fatalf("seed %d: drift counter moved but no TrainDone arrived", seed)
			}
			ppw := 7 * 24 // hourly series
			if out.firstDriftAt >= ppw {
				t.Fatalf("seed %d: first drift retrain at %d points since train — not before the weekly tick (%d)",
					seed, out.firstDriftAt, ppw)
			}
			t.Logf("seed %d: %d drift retrains, first at %d points since train; %d queries pending mid-drive, %d answered",
				seed, out.driftRetrains, out.firstDriftAt, out.pendingQueries, out.queriesAnswered)
		})
	}
}

// TestSimRegimeStationary replays the same drive without the shift: the
// drift detector must stay silent for the whole sub-week window, and the
// twin restore must still be bit-identical.
func TestSimRegimeStationary(t *testing.T) {
	if testing.Short() {
		t.Skip("regime simulation is not -short friendly")
	}
	for _, seed := range regimeMatrix(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			out, err := runRegime(regimeScenario{seed: seed, shift: false}, t.TempDir())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if out.driftRetrains != 0 {
				t.Fatalf("seed %d: stationary traffic armed %d drift retrains, want 0", seed, out.driftRetrains)
			}
			if out.trains != 0 {
				t.Fatalf("seed %d: stationary drive saw %d retrains inside the week, want 0", seed, out.trains)
			}
		})
	}
}

// TestSimRegimeMutationDriftDisabled is the self-test for the shift
// assertion: the same level shift with the drift detector disabled must NOT
// produce the early retrain. If this test ever fails, TestSimRegimeShift is
// passing for a reason other than the drift detector and can no longer be
// trusted.
func TestSimRegimeMutationDriftDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("regime simulation is not -short friendly")
	}
	seed := regimeSeeds[0]
	out, err := runRegime(regimeScenario{seed: seed, shift: true, driftThreshold: -1}, t.TempDir())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if out.driftRetrains != 0 || out.trains != 0 {
		t.Fatalf("seed %d: drift disabled yet %d drift retrains / %d trains fired — the shift assertion no longer isolates the detector",
			seed, out.driftRetrains, out.trains)
	}
}
