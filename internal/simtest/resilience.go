package simtest

// Resilience fault orchestration: the slow-disk stall, the hung trainer and
// the ingest flood (DESIGN.md §11). Each orchestration drives the live
// engine through one overload/stall episode and checks the degraded-mode,
// admission-control and watchdog invariants against the mirror; the exp*
// counters on the Harness predict the engine's resilience counters, which
// checkResilience compares before every engine teardown.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"opprentice/internal/engine"
	"opprentice/internal/faultinject"
)

const (
	// simInflight is the per-shard ingest budget the simulation runs with:
	// small enough that a single oversized batch (simInflight+1 points)
	// trips admission control from a single-threaded driver.
	simInflight = 512
	// stallWALDeadline / stallTrainDeadline are the tightened deadlines
	// during a fault window, so a stall is detected in milliseconds instead
	// of the production seconds/minutes.
	stallWALDeadline   = 250 * time.Millisecond
	stallTrainDeadline = 250 * time.Millisecond
	// prodWALDeadline / prodTrainDeadline restore the engine defaults after
	// a fault window. The setters treat zero as "disabled", so the restore
	// must store the explicit defaults.
	prodWALDeadline   = 2 * time.Second
	prodTrainDeadline = 5 * time.Minute
	// recoveryWindow is the degraded-recovery hysteresis the simulation
	// configures, and degradedBatches how many batches ride the degraded
	// path before the stall clears.
	recoveryWindow  = 150 * time.Millisecond
	degradedBatches = 2
	// stallAwait bounds every wait inside a stall orchestration. The
	// watchdog fires within ~1s of real time at the tightened deadlines, so
	// ten seconds means "the watchdog is off", not "slow".
	stallAwait = 10 * time.Second
)

// gatedStore wraps the engine's store so a StallGate can wedge every
// durable write, emulating a disk that has stopped answering. Reads and
// series creation stay untouched: the simulated failure is a slow data
// path, not a missing one.
type gatedStore struct {
	engine.Store
	gate *faultinject.StallGate
}

func (g *gatedStore) AppendPoints(ctx context.Context, name string, values []float64) error {
	g.gate.Wait()
	return g.Store.AppendPoints(ctx, name, values)
}

func (g *gatedStore) AppendLabel(ctx context.Context, name string, start, end int, anomalous bool) error {
	g.gate.Wait()
	return g.Store.AppendLabel(ctx, name, start, end, anomalous)
}

// AppendTypedLabel forwards the optional anomaly-class capability through the
// gate. The embedded interface would hide it (it is not part of engine.Store),
// and the engine's contract for a store without it is to silently degrade
// typed labels to plain records — which the WAL-replay invariant rejects.
func (g *gatedStore) AppendTypedLabel(ctx context.Context, name string, start, end int, anomalous bool, class uint8) error {
	g.gate.Wait()
	if ts, ok := g.Store.(engine.TypedLabelStore); ok {
		return ts.AppendTypedLabel(ctx, name, start, end, anomalous, class)
	}
	return g.Store.AppendLabel(ctx, name, start, end, anomalous)
}

// chooseHungTarget picks the series whose next batch will cross the retrain
// watermark (so the wedged round is a scheduled retrain, not a manual one),
// preferring the scenario's choice. Empty when no series qualifies this
// step — the fault then defers to the next step.
func (h *Harness) chooseHungTarget() string {
	qualifies := func(st *seriesState) bool {
		return !st.dead && st.trained &&
			st.total+h.scen.BatchPoints-st.pointsAtTrain >= st.ppw
	}
	if pref := h.mirror[h.names[h.hungTarget%len(h.names)]]; qualifies(pref) {
		return pref.spec.Name
	}
	for _, name := range h.names {
		if qualifies(h.mirror[name]) {
			return name
		}
	}
	return ""
}

// stepHungTrainer wedges the scheduled retrain that st's next batch
// triggers: it arms the training gate and tightens the train deadline, then
// lets the regular append run — appendChecked routes the gated round's
// aftermath to afterStalledTrain via stallArmed.
func (h *Harness) stepHungTrainer(st *seriesState) error {
	name := st.spec.Name
	h.tracef("step %d: hung_trainer %s (watchdog enabled=%v)", h.step, name, !h.DisableWatchdog)
	if h.DisableWatchdog {
		h.eng.SetTrainDeadline(0) // zero disables the watchdog entirely
	} else {
		h.eng.SetTrainDeadline(stallTrainDeadline)
	}
	h.trainGate.Arm()
	h.stallArmed = true
	defer func() {
		// Idempotent cleanup for the violation paths: afterStalledTrain
		// already released and restored on success.
		h.stallArmed = false
		h.trainGate.Release()
		h.eng.SetTrainDeadline(prodTrainDeadline)
	}()
	if err := h.appendChecked(st, h.scen.BatchPoints); err != nil {
		return err
	}
	if !h.hungDone {
		return h.fail("watchdog", "series %s: hung-trainer step %d did not cross the retrain watermark — scenario scheduling bug", name, h.step)
	}
	return nil
}

// afterStalledTrain is the gated counterpart of afterWeeklyTrain: the round
// the append just scheduled is wedged on the training gate, and the
// watchdog must abandon it, retry, and quarantine the series — after which
// a manual retrain over the cleared gate must lift the quarantine.
func (h *Harness) afterStalledTrain(st *seriesState) error {
	name := st.spec.Name
	h.hungDone = true

	// The first attempt stalls, the watchdog retries with backoff, and the
	// retry stalls too — tripping the failure limit of 2.
	for attempt := 1; attempt <= 2; attempt++ {
		ev, ok := h.awaitTrainWithin(name, stallAwait)
		if !ok {
			return h.fail("watchdog", "series %s: no TrainDone within %v for gated round %d — the training watchdog never abandoned the stalled work",
				name, stallAwait, attempt)
		}
		if ev.err == nil {
			return h.fail("watchdog", "series %s: gated training round %d reported success while the gate was armed", name, attempt)
		}
		if !errors.Is(ev.err, engine.ErrStalled) {
			return h.fail("watchdog", "series %s: gated round %d failed with %v, want ErrStalled", name, attempt, ev.err)
		}
	}
	h.expStalls += 2
	h.expRetries++

	// The quarantine trip runs after the TrainDone hook fires (the hook is
	// deferred inside the round), so poll briefly instead of asserting
	// immediately.
	quarantineBy := time.Now().Add(stallAwait)
	for {
		status, err := h.eng.Status(context.Background(), name)
		if err != nil {
			return h.fail("watchdog", "series %s: status during quarantine poll: %v", name, err)
		}
		if status.Quarantined {
			break
		}
		if time.Now().After(quarantineBy) {
			return h.fail("watchdog", "series %s: two consecutive stalls at the failure limit but the series never quarantined", name)
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.expQuarantined++
	if r := h.eng.Ready(); r.Ready || !containsStr(r.Quarantined, name) {
		return h.fail("watchdog", "series %s: quarantined but readiness %+v does not say so", name, r)
	}

	// Clear the wedge and prove a manual retrain lifts the quarantine and
	// publishes normally.
	h.stallArmed = false
	h.trainGate.Release()
	h.eng.SetTrainDeadline(prodTrainDeadline)
	res, err := h.eng.Train(context.Background(), name)
	if err != nil {
		return h.fail("watchdog", "series %s: manual retrain after the hang cleared failed: %v", name, err)
	}
	ev, aerr := h.awaitTrain(name)
	if aerr != nil {
		return aerr
	}
	if ev.err != nil {
		return h.fail("watchdog", "series %s: manual retrain's TrainDone reported %v", name, ev.err)
	}
	if res.Points != st.total {
		return h.fail("retrain", "series %s: manual retrain saw %d points, stream head is %d", name, res.Points, st.total)
	}
	st.pointsAtTrain = res.Points
	h.trains++
	if err := h.awaitPublishInto(st, res); err != nil {
		return err
	}
	if err := h.checkManifest(st, res.CThld, true); err != nil {
		return err
	}
	if err := h.eng.VerifyFeatureCache(name); err != nil {
		return h.fail("extract_cache", "series %s: incremental extraction diverges from cold after the stalled rounds: %v", name, err)
	}
	status, serr := h.eng.Status(context.Background(), name)
	if serr != nil {
		return serr
	}
	if status.Quarantined {
		return h.fail("watchdog", "series %s: still quarantined after a successful manual retrain", name)
	}
	h.tracef("step %d: %s stalled twice, quarantined, recovered by manual retrain (cthld=%.4f)", h.step, name, res.CThld)
	return nil
}

// faultSlowDisk stalls the store under one series' WAL writer: the next
// batch blows the (tightened) WAL deadline and flips the series degraded,
// two more batches ride the degraded path (threshold-only advisory
// verdicts, bounded buffering), and once the stall clears the series must
// drain, recover through the hysteresis, and serve full-fidelity verdicts
// again — with zero lost points.
func (h *Harness) faultSlowDisk() error {
	var st *seriesState
	for _, name := range h.names {
		if s := h.mirror[name]; !s.dead && !s.corrupted {
			st = s
			break
		}
	}
	if st == nil {
		h.tracef("step %d: slow_disk skipped (no healthy series)", h.step)
		return nil
	}
	name := st.spec.Name
	n := h.scen.BatchPoints
	h.tracef("step %d: slow_disk %s", h.step, name)

	h.eng.SetWALDeadline(stallWALDeadline)
	h.walGate.Arm()
	released := false
	release := func() {
		if released {
			return
		}
		released = true
		h.walGate.Release()
		h.eng.SetWALDeadline(prodWALDeadline)
	}
	defer release()

	// The degrading batch rides the healthy path into the wedged writer:
	// the verdicts are still full-model (computed before the durable
	// write), alarms included, but the deadline blows and the series must
	// flip degraded with the batch buffered, not lost.
	base := st.total
	res, err := h.appendRaw(st, n)
	if err != nil {
		return err
	}
	if res.Persisted {
		return h.fail("degraded", "series %s: WAL writer wedged but the append still reports persisted", name)
	}
	if !res.Degraded {
		return h.fail("degraded", "series %s: append blew the %v WAL deadline without entering degraded mode", name, stallWALDeadline)
	}
	if len(res.Verdicts) != n {
		return h.fail("verdicts", "series %s: %d verdicts for the degrading batch of %d", name, len(res.Verdicts), n)
	}
	for i, v := range res.Verdicts {
		if v.Index != base+i {
			return h.fail("verdicts", "series %s: degrading-batch verdict %d has index %d, want %d", name, i, v.Index, base+i)
		}
		if v.Degraded {
			return h.fail("degraded", "series %s: degrading batch's verdict %d flagged degraded — it was computed by the full model", name, i)
		}
		if v.Anomalous {
			st.anomSinceRestore++
		}
	}
	h.expDegEntered++

	// Degraded serving: threshold-only advisory verdicts, values buffered
	// in the background writer, nothing alarmed.
	for b := 0; b < degradedBatches; b++ {
		base = st.total
		res, err := h.appendRaw(st, n)
		if err != nil {
			return err
		}
		if res.Persisted {
			return h.fail("degraded", "series %s: degraded batch %d reports persisted with the writer still wedged", name, b+1)
		}
		if !res.Degraded {
			return h.fail("degraded", "series %s: batch %d left degraded mode with the stall still in place", name, b+1)
		}
		if len(res.Verdicts) != n {
			return h.fail("degraded", "series %s: %d advisory verdicts for degraded batch of %d", name, len(res.Verdicts), n)
		}
		for i, v := range res.Verdicts {
			if v.Index != base+i {
				return h.fail("degraded", "series %s: degraded verdict %d has index %d, want %d", name, i, v.Index, base+i)
			}
			if !v.Degraded {
				return h.fail("degraded", "series %s: verdict %d during the degraded window not flagged degraded", name, i)
			}
			if math.IsNaN(v.Probability) || v.Probability < 0 || v.Probability > 1 {
				return h.fail("degraded", "series %s: degraded verdict at %d has probability %v outside [0,1]", name, v.Index, v.Probability)
			}
		}
		h.expBuffered += int64(n)
	}
	status, serr := h.eng.Status(context.Background(), name)
	if serr != nil {
		return serr
	}
	if !status.Degraded {
		return h.fail("degraded", "series %s: mid-window status does not report degraded", name)
	}
	if r := h.eng.Ready(); r.Ready || !containsStr(r.Degraded, name) {
		return h.fail("degraded", "series %s: degraded but readiness %+v does not say so", name, r)
	}

	// Clear the stall, force the writer to drain, and wait out the
	// hysteresis (the wedged op completes "slow" at release, stamping the
	// last violation — the quiet period starts there).
	release()
	ctx, cancel := context.WithTimeout(context.Background(), stallAwait)
	err = h.eng.SyncWAL(ctx, name)
	cancel()
	if err != nil {
		return h.fail("degraded", "series %s: WAL writer did not drain after the stall cleared: %v", name, err)
	}
	time.Sleep(recoveryWindow + 250*time.Millisecond)

	// The next regular batch must recover the series: appendChecked demands
	// Persisted=true, full-model verdicts, and no degraded flag.
	if err := h.appendChecked(st, n); err != nil {
		return err
	}
	h.expDegRecovered++
	status, serr = h.eng.Status(context.Background(), name)
	if serr != nil {
		return serr
	}
	if status.Degraded {
		return h.fail("degraded", "series %s: still degraded after drain and recovery window", name)
	}
	if c := h.eng.Counters(); c.WALLostPoints != 0 {
		return h.fail("degraded", "series %s: %d points dropped from the log with the degraded buffer never at capacity", name, c.WALLostPoints)
	}
	h.tracef("step %d: slow_disk %s recovered (%d points buffered through the window)", h.step, name, degradedBatches*n)
	return nil
}

// faultIngestFlood pushes one batch over the per-shard in-flight budget and
// checks admission control sheds it whole: ErrOverloaded, zero points
// appended, and the next normal batch sails through.
func (h *Harness) faultIngestFlood() error {
	var st *seriesState
	for _, name := range h.names {
		if s := h.mirror[name]; !s.dead {
			st = s
			break
		}
	}
	if st == nil {
		h.tracef("step %d: ingest_flood skipped (no live series)", h.step)
		return nil
	}
	name := st.spec.Name
	before, err := h.eng.Status(context.Background(), name)
	if err != nil {
		return err
	}
	// Admission runs before validation, so the flood's contents never
	// matter — zero values and zero timestamps do fine.
	flood := make([]engine.Point, simInflight+1)
	_, aerr := h.eng.Append(context.Background(), name, flood, nil)
	if !errors.Is(aerr, engine.ErrOverloaded) {
		return h.fail("overload", "series %s: %d-point batch over the %d in-flight budget returned %v, want ErrOverloaded",
			name, len(flood), simInflight, aerr)
	}
	h.expSheds++
	after, err := h.eng.Status(context.Background(), name)
	if err != nil {
		return err
	}
	if after.Points != before.Points || after.Points != st.total {
		return h.fail("overload", "series %s: shed batch moved the point count %d -> %d (mirror %d) — sheds must be atomic",
			name, before.Points, after.Points, st.total)
	}
	if c := h.eng.Counters(); c.IngestSheds != h.expSheds {
		return h.fail("overload", "engine counted %d sheds, mirror expected %d", c.IngestSheds, h.expSheds)
	}
	// The overload is instantaneous: the next normal batch must pass every
	// regular invariant.
	if err := h.appendChecked(st, h.scen.BatchPoints); err != nil {
		return err
	}
	h.tracef("step %d: ingest_flood %s shed %d points atomically", h.step, name, len(flood))
	return nil
}

// appendRaw appends the next n generated points without the healthy-path
// assertions (appendChecked's persistence and degraded-mode guards do not
// hold inside a fault window) but with full mirror bookkeeping.
func (h *Harness) appendRaw(st *seriesState, n int) (engine.AppendResult, error) {
	name := st.spec.Name
	base := st.total
	if base+n > st.data.Series.Len() {
		return engine.AppendResult{}, fmt.Errorf("simtest: scenario ran out of generated data for %s", name)
	}
	pts := make([]engine.Point, n)
	for i := range pts {
		pts[i] = engine.Point{
			Timestamp: st.data.Series.TimeAt(base + i),
			Value:     st.data.Series.Values[base+i],
		}
	}
	res, err := h.eng.Append(context.Background(), name, pts, nil)
	if err != nil {
		return res, h.fail("append", "series %s: in-fault append of %d points at %d rejected: %v", name, n, base, err)
	}
	if res.Appended != n || res.Total != base+n {
		return res, h.fail("append", "series %s: in-fault append %d/%d, total %d want %d", name, res.Appended, n, res.Total, base+n)
	}
	st.total += n
	h.ingestSinceRestore += n
	for i := 0; i < n; i++ {
		st.labels = append(st.labels, false)
		st.types = append(st.types, 0)
	}
	return res, nil
}

// checkResilience compares the engine's overload/degraded/watchdog counters
// against the mirror's predictions. Called before every engine teardown
// (final shutdown and each crash) since the counters die with the instance.
func (h *Harness) checkResilience() error {
	c := h.eng.Counters()
	if c.IngestSheds != h.expSheds {
		return h.fail("overload", "engine shed %d batches since the last restore, mirror expected %d", c.IngestSheds, h.expSheds)
	}
	if c.DegradedEntered != h.expDegEntered || c.DegradedRecovered != h.expDegRecovered {
		return h.fail("degraded", "degraded transitions entered=%d recovered=%d, mirror expected %d/%d",
			c.DegradedEntered, c.DegradedRecovered, h.expDegEntered, h.expDegRecovered)
	}
	if c.WALBufferedPoints != h.expBuffered {
		return h.fail("degraded", "engine buffered %d points through degraded windows, mirror expected %d", c.WALBufferedPoints, h.expBuffered)
	}
	if c.WALLostPoints != 0 {
		return h.fail("degraded", "%d points dropped from the log with the degraded buffer never at capacity", c.WALLostPoints)
	}
	if c.TrainStalls != h.expStalls {
		return h.fail("watchdog", "watchdog abandoned %d training rounds, schedule expected %d", c.TrainStalls, h.expStalls)
	}
	if c.TrainRetries != h.expRetries {
		return h.fail("watchdog", "watchdog retried %d rounds, schedule expected %d", c.TrainRetries, h.expRetries)
	}
	if c.SeriesQuarantined != h.expQuarantined {
		return h.fail("watchdog", "%d series quarantined, schedule expected %d", c.SeriesQuarantined, h.expQuarantined)
	}
	if c.WorkerPanics != 0 {
		return h.fail("watchdog", "%d supervised workers panicked", c.WorkerPanics)
	}
	if r := h.eng.Ready(); !r.Ready {
		return h.fail("degraded", "engine not ready outside any fault window: %+v", r)
	}
	return nil
}

// resetResilienceExpectations zeroes the mirror's counter predictions; the
// engine's own counters start at zero with every instance.
func (h *Harness) resetResilienceExpectations() {
	h.expSheds = 0
	h.expDegEntered = 0
	h.expDegRecovered = 0
	h.expBuffered = 0
	h.expStalls = 0
	h.expRetries = 0
	h.expQuarantined = 0
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
