// Command opprenticed serves Opprentice as an HTTP anomaly-detection
// service (see internal/service for the API).
//
// Usage:
//
//	opprenticed -addr :8080
//
// Then, from any HTTP client:
//
//	curl -X PUT localhost:8080/v1/series/pv -d '{"interval_seconds":60,"start":"2015-01-05T00:00:00Z"}'
//	curl -X POST localhost:8080/v1/series/pv/points -d '{"points":[{"value":9213}]}'
//	curl -X POST localhost:8080/v1/series/pv/labels -d '{"windows":[{"start":120,"end":135,"anomalous":true}]}'
//	curl -X POST localhost:8080/v1/series/pv/train
//	curl localhost:8080/v1/series/pv/alarms
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opprentice/internal/engine"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/service"
	"opprentice/internal/tsdb"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data-dir", "", "directory for durable series logs (empty = memory only)")
		modelDir  = flag.String("model-dir", "", "directory for the versioned model registry (empty = no checkpointing; restarts retrain cold)")
		modelKeep = flag.Int("model-keep", 0, "model generations to retain per series (0 = default 3)")
		shards    = flag.Int("shards", 0, "series registry shards (0 = default; rounded up to a power of two)")
		workers   = flag.Int("retrain-workers", 0, "background retrain workers (0 = default)")
		restoreW  = flag.Int("restore-workers", 0, "parallel series restores at startup (0 = default min(8, GOMAXPROCS))")
		cacheMB   = flag.Int("extract-cache-mb", 0, "incremental feature-extraction cache cap in MiB, shared by all series (0 = default 256, negative = disabled)")
		timeout   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	// The engine owns all series state and background training; the server is
	// a thin HTTP/JSON adapter over it.
	cfg := engine.Config{
		Log:            logger,
		Shards:         *shards,
		RetrainWorkers: *workers,
		RestoreWorkers: *restoreW,
		ExtractCacheMB: *cacheMB,
	}
	if *modelDir != "" {
		models, err := modelreg.Open(modelreg.Config{Dir: *modelDir, Keep: *modelKeep})
		if err != nil {
			logger.Error("open model dir", "err", err)
			os.Exit(1)
		}
		cfg.Models = models
	}
	eng := engine.New(cfg)
	srv := service.NewServerWithEngine(eng, logger)
	if *dataDir != "" {
		store, err := tsdb.Open(*dataDir)
		if err != nil {
			logger.Error("open data dir", "err", err)
			os.Exit(1)
		}
		defer store.Close()
		srv.SetStore(store)
		start := time.Now()
		restored, err := srv.Restore()
		if err != nil {
			logger.Error("restore", "err", err)
			os.Exit(1)
		}
		c := eng.Counters()
		logger.Info("restored series from data dir", "count", restored, "dir", *dataDir,
			"warm", c.ModelRestoreWarm, "cold", c.ModelRestoreCold, "took", time.Since(start))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("opprenticed listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
			srv.Close()
			os.Exit(1)
		}
		// Drain pending webhook deliveries, then the deferred store.Close
		// flushes and closes the WAL handles.
		srv.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	}
}
