// Command opprenticed serves Opprentice as an HTTP anomaly-detection
// service (see internal/service for the API).
//
// Usage:
//
//	opprenticed -addr :8080
//
// Then, from any HTTP client:
//
//	curl -X PUT localhost:8080/v1/series/pv -d '{"interval_seconds":60,"start":"2015-01-05T00:00:00Z"}'
//	curl -X POST localhost:8080/v1/series/pv/points -d '{"points":[{"value":9213}]}'
//	curl -X POST localhost:8080/v1/series/pv/labels -d '{"windows":[{"start":120,"end":135,"anomalous":true}]}'
//	curl -X POST localhost:8080/v1/series/pv/train
//	curl localhost:8080/v1/series/pv/alarms
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"opprentice/internal/engine"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/service"
	"opprentice/internal/tsdb"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data-dir", "", "directory for durable series logs (empty = memory only)")
		modelDir  = flag.String("model-dir", "", "directory for the versioned model registry (empty = no checkpointing; restarts retrain cold)")
		modelKeep = flag.Int("model-keep", 0, "model generations to retain per series (0 = default 3)")
		shards    = flag.Int("shards", 0, "series registry shards (0 = default; rounded up to a power of two)")
		workers   = flag.Int("retrain-workers", 0, "background retrain workers (0 = default)")
		restoreW  = flag.Int("restore-workers", 0, "parallel series restores at startup (0 = default min(8, GOMAXPROCS))")
		cacheMB   = flag.Int("extract-cache-mb", 0, "incremental feature-extraction cache cap in MiB, shared by all series (0 = default 256, negative = disabled)")
		inflight  = flag.Int("ingest-inflight", 0, "per-shard in-flight ingest budget in points; batches over it are shed with 429 (0 = default 65536, negative = unlimited)")
		walDL     = flag.Duration("wal-deadline", 0, "how long an append waits for its durable WAL write before the series degrades to threshold-only serving (0 = default 2s, negative = disabled)")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation threshold in bytes (0 = default 64 MiB)")
		walGC     = flag.Duration("wal-group-commit", 0, "how long the WAL appender holds a commit open to batch concurrent writers into one fsync (0 = commit immediately, coalescing only what is already queued)")
		trainDL   = flag.Duration("train-deadline", 0, "training watchdog deadline per round; stalled rounds are abandoned and retried (0 = default 5m, negative = disabled)")
		degradedR = flag.Duration("degraded-recovery", 0, "quiet period before a degraded series recovers full serving (0 = default 30s, negative = sticky until restart)")
		queryBand = flag.Float64("query-band", 0, "uncertainty band around the live cThld within which verdicts become label-query candidates (0 = default 0.1, negative = queries disabled)")
		queryDep  = flag.Int("query-depth", 0, "label-query queue capacity in windows per series (0 = default 8, negative = queries disabled)")
		driftThld = flag.Float64("drift-threshold", 0, "PSI level at which a vote-distribution window counts toward drift; two consecutive arm an early retrain (0 = default 0.25, negative = drift detection disabled)")
		driftWin  = flag.Int("drift-window", 0, "drift histogram window in points (0 = default: one day of the series' points)")
		pprofAddr = flag.String("pprof-addr", "", "listen address for net/http/pprof profiling endpoints (empty = disabled); kept off the serving listener so profiling is never exposed by default")
		timeout   = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	// The engine owns all series state and background training; the server is
	// a thin HTTP/JSON adapter over it.
	cfg := engine.Config{
		Log:              logger,
		Shards:           *shards,
		RetrainWorkers:   *workers,
		RestoreWorkers:   *restoreW,
		ExtractCacheMB:   *cacheMB,
		IngestInflight:   *inflight,
		WALDeadline:      *walDL,
		TrainDeadline:    *trainDL,
		DegradedRecovery: *degradedR,
		QueryBand:        *queryBand,
		QueryDepth:       *queryDep,
		DriftThreshold:   *driftThld,
		DriftWindow:      *driftWin,
	}
	if *modelDir != "" {
		models, err := modelreg.Open(modelreg.Config{Dir: *modelDir, Keep: *modelKeep})
		if err != nil {
			logger.Error("open model dir", "err", err)
			os.Exit(1)
		}
		cfg.Models = models
	}
	eng := engine.New(cfg)
	srv := service.NewServerWithEngine(eng, logger)
	if *dataDir != "" {
		var walOpts []tsdb.Option
		if *walSeg > 0 {
			walOpts = append(walOpts, tsdb.WithSegmentBytes(*walSeg))
		}
		if *walGC > 0 {
			walOpts = append(walOpts, tsdb.WithGroupCommit(*walGC))
		}
		store, err := tsdb.Open(*dataDir, walOpts...)
		if err != nil {
			logger.Error("open data dir", "err", err)
			os.Exit(1)
		}
		defer store.Close()
		srv.SetStore(store)
		start := time.Now()
		restored, err := srv.Restore()
		if err != nil {
			logger.Error("restore", "err", err)
			os.Exit(1)
		}
		c := eng.Counters()
		logger.Info("restored series from data dir", "count", restored, "dir", *dataDir,
			"warm", c.ModelRestoreWarm, "cold", c.ModelRestoreCold, "took", time.Since(start))
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: registering pprof on the
		// serving handler would expose heap dumps and CPU profiles to anyone
		// who can reach the API.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof serve", "err", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("opprenticed listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
			srv.Close()
			os.Exit(1)
		}
		// Drain pending webhook deliveries, then the deferred store.Close
		// flushes and closes the WAL handles.
		srv.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	}
}
