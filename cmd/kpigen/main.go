// Command kpigen emits the synthetic case-study KPIs as labeled CSV, for
// feeding cmd/opprentice, cmd/labeltool or external tooling.
//
// Usage:
//
//	kpigen -kpi pv -scale medium -seed 1 -o pv.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opprentice/internal/kpigen"
	"opprentice/internal/timeseries"
)

func main() {
	var (
		kpi      = flag.String("kpi", "pv", "which KPI: pv, sr, srt")
		scale    = flag.String("scale", "medium", "dataset scale: small, medium, full")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (default stdout)")
		noLabels = flag.Bool("no-labels", false, "omit the ground-truth label column")
	)
	flag.Parse()

	var sc kpigen.Scale
	switch strings.ToLower(*scale) {
	case "small":
		sc = kpigen.Small
	case "medium":
		sc = kpigen.Medium
	case "full":
		sc = kpigen.Full
	default:
		fmt.Fprintf(os.Stderr, "kpigen: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	var profile *kpigen.Profile
	for _, p := range kpigen.Profiles(sc) {
		if p.Name == strings.ToLower(*kpi) {
			profile = &p
			break
		}
	}
	if profile == nil {
		fmt.Fprintf(os.Stderr, "kpigen: unknown KPI %q (want pv, sr or srt)\n", *kpi)
		os.Exit(2)
	}
	d := kpigen.Generate(*profile, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kpigen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	labels := d.Labels
	if *noLabels {
		labels = nil
	}
	if err := timeseries.WriteCSV(w, d.Series, labels); err != nil {
		fmt.Fprintln(os.Stderr, "kpigen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kpigen: %s — %d points, %d weeks, %.1f%% anomalous (%d windows)\n",
		profile.Name, d.Series.Len(), profile.Weeks,
		100*d.Labels.Fraction(), len(d.Labels.Windows()))
}
