package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opprentice/internal/tsdb"
)

var update = flag.Bool("update", false, "regenerate the wal cat fixture segment and golden file")

// genFixture writes the committed fixture data directory: one shard holding
// one segment with a create, two point batches, a label, a second series, a
// tombstone — and one deliberately corrupted points frame. Every append is a
// blocking single request (no group-commit window), so the frame sequence is
// deterministic and the golden file stays stable across regenerations.
func genFixture(t *testing.T, dir string) {
	t.Helper()
	ctx := context.Background()
	s, err := tsdb.Open(dir, tsdb.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	meta := tsdb.Meta{
		Name:            "pv",
		Start:           time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC),
		IntervalSeconds: 60,
		Recall:          0.66,
		Precision:       0.66,
		Trees:           60,
	}
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{10.5, 11, 11.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 1, 3, true); err != nil {
		t.Fatal(err)
	}
	meta.Name = "gone"
	meta.IntervalSeconds = 300
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "gone", []float64{7, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{12, 80}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Damage the newest pv points frame so the golden output pins the
	// crc=FAIL rendering and corruption attribution.
	if err := tsdb.CorruptPointsFrame(dir, "pv"); err != nil {
		t.Fatal(err)
	}
}

// TestWalCatGolden pins the exact `opprenticectl wal cat` output over a
// committed fixture segment: the decoder, the corrupt-frame rendering and
// the stats line are all part of the operator-facing contract. Run with
// -update to regenerate fixture and golden together after a format change.
func TestWalCatGolden(t *testing.T) {
	fixture := filepath.Join("testdata", "walcat")
	golden := filepath.Join("testdata", "walcat.golden")
	if *update {
		if err := os.RemoveAll(fixture); err != nil {
			t.Fatal(err)
		}
		genFixture(t, fixture)
	}

	var out bytes.Buffer
	if err := walCat(&out, fixture, tsdb.DumpOptions{}); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("wal cat output drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}

	// The series filter narrows output to one name's records.
	out.Reset()
	if err := walCat(&out, fixture, tsdb.DumpOptions{Series: "gone"}); err != nil {
		t.Fatal(err)
	}
	filtered := out.String()
	if !bytes.Contains([]byte(filtered), []byte("tombstone")) {
		t.Errorf("-series gone output lost the tombstone:\n%s", filtered)
	}
	if bytes.Contains([]byte(filtered), []byte(`"pv"`)) {
		t.Errorf("-series gone output leaked pv records:\n%s", filtered)
	}
}

// TestWalCatRefusesMissingDir pins the error path (no data dir, no panic).
func TestWalCatRefusesMissingDir(t *testing.T) {
	if err := walCat(io.Discard, filepath.Join(t.TempDir(), "nope"), tsdb.DumpOptions{}); err == nil {
		t.Fatal("missing directory accepted")
	}
}
