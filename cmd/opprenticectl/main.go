// Command opprenticectl is the CLI companion of opprenticed: it creates
// monitored series, uploads KPI data from CSV, labels windows, triggers
// training and reads alarms over the HTTP API.
//
// Usage:
//
//	opprenticectl -server http://localhost:8080 list
//	opprenticectl create pv -interval 60 -start 2015-01-05T00:00:00Z
//	opprenticectl ingest pv -csv pv.csv            # labeled CSV also labels
//	opprenticectl label pv -window 120:135
//	opprenticectl train pv
//	opprenticectl status pv
//	opprenticectl ready                            # readiness probe; non-zero exit when degraded
//	opprenticectl alarms pv -since 2015-03-01T00:00:00Z
//	opprenticectl models list                      # series with published models
//	opprenticectl models inspect pv                # generation index + current
//	opprenticectl models rollback pv               # serve the previous generation
//	opprenticectl queries list                     # pending label queries, most uncertain first
//	opprenticectl queries answer pv -window 120:135 -anomalous
//
// The wal subcommand works on a data directory directly (no server needed):
//
//	opprenticectl wal cat -data-dir ./data                 # decode every segment frame
//	opprenticectl wal cat -data-dir ./data -series pv      # one series' records
//	opprenticectl wal cat -data-dir ./data -since 3        # skip segments below 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"opprentice/internal/service"
	"opprentice/internal/timeseries"
	"opprentice/internal/tsdb"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "opprenticed base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	client := service.NewClient(*server, nil)
	ctx := context.Background()
	var err error
	switch args[0] {
	case "list":
		err = runList(ctx, client)
	case "create":
		err = runCreate(ctx, client, args[1:])
	case "ingest":
		err = runIngest(ctx, client, args[1:])
	case "label":
		err = runLabel(ctx, client, args[1:])
	case "train":
		err = runTrain(ctx, client, args[1:])
	case "status":
		err = runStatus(ctx, client, args[1:])
	case "ready":
		err = runReady(ctx, client)
	case "alarms":
		err = runAlarms(ctx, client, args[1:])
	case "models":
		err = runModels(ctx, client, args[1:])
	case "queries":
		err = runQueries(ctx, client, args[1:])
	case "wal":
		err = runWAL(args[1:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprenticectl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: opprenticectl [-server URL] <list|create|ingest|label|train|status|ready|alarms|models|queries|wal> [args]")
	fmt.Fprintln(os.Stderr, "       opprenticectl models <list|inspect|rollback> [series]")
	fmt.Fprintln(os.Stderr, "       opprenticectl queries <list [-series NAME]|answer SERIES -window S:E [-anomalous]>")
	fmt.Fprintln(os.Stderr, "       opprenticectl wal cat -data-dir DIR [-series NAME] [-since SEGMENT]")
}

func needName(args []string) (string, []string, error) {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return "", nil, fmt.Errorf("series name required")
	}
	return args[0], args[1:], nil
}

func runList(ctx context.Context, c *service.Client) error {
	names, err := c.List(ctx)
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func runCreate(ctx context.Context, c *service.Client, args []string) error {
	name, rest, err := needName(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("create", flag.ContinueOnError)
	interval := fs.Int("interval", 60, "sampling interval in seconds")
	start := fs.String("start", "", "timestamp of the first point (RFC 3339)")
	recall := fs.Float64("recall", 0.66, "preference: minimum recall")
	precision := fs.Float64("precision", 0.66, "preference: minimum precision")
	trees := fs.Int("trees", 60, "forest size")
	predictor := fs.String("cthld-predictor", "", "cThld predictor: ewma (default) or evt")
	evtQ := fs.Float64("evt-q", 0, "EVT target exceedance risk in (0,1); 0 auto-calibrates weekly")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	t, err := time.Parse(time.RFC3339, *start)
	if err != nil {
		return fmt.Errorf("-start: %w", err)
	}
	if err := c.Create(ctx, name, service.CreateRequest{
		IntervalSeconds: *interval,
		Start:           t,
		Recall:          *recall,
		Precision:       *precision,
		Trees:           *trees,
		CThldPredictor:  *predictor,
		EVTQ:            *evtQ,
	}); err != nil {
		return err
	}
	fmt.Println("created", name)
	return nil
}

func runIngest(ctx context.Context, c *service.Client, args []string) error {
	name, rest, err := needName(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	csvPath := fs.String("csv", "", "CSV file (timestamp,value[,label])")
	batch := fs.Int("batch", 2000, "points per request")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *csvPath == "" {
		return fmt.Errorf("-csv required")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	series, labels, err := timeseries.ReadCSV(f, name)
	f.Close()
	if err != nil {
		return err
	}
	var sent, alarms int
	pts := make([]service.Point, 0, *batch)
	flush := func() error {
		if len(pts) == 0 {
			return nil
		}
		resp, err := c.Append(ctx, name, pts)
		if err != nil {
			return err
		}
		sent += resp.Appended
		for _, v := range resp.Verdicts {
			if v.Anomalous {
				alarms++
			}
		}
		pts = pts[:0]
		return nil
	}
	for _, v := range series.Values {
		pts = append(pts, service.Point{Value: v})
		if len(pts) == *batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	fmt.Printf("ingested %d points (%d alarms)\n", sent, alarms)
	if labels != nil {
		var windows []service.LabelWindow
		for _, w := range labels.Windows() {
			windows = append(windows, service.LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
		}
		if err := c.Label(ctx, name, windows); err != nil {
			return err
		}
		fmt.Printf("labeled %d windows from the CSV\n", len(windows))
	}
	return nil
}

func runLabel(ctx context.Context, c *service.Client, args []string) error {
	name, rest, err := needName(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("label", flag.ContinueOnError)
	window := fs.String("window", "", "index range start:end (half open)")
	clear := fs.Bool("clear", false, "clear instead of set")
	atype := fs.String("type", "", "anomaly type (spike|drop|ramp|level_shift|jitter); trains the type head")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	parts := strings.SplitN(*window, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("-window must be start:end")
	}
	start, err1 := strconv.Atoi(parts[0])
	end, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("-window must be numeric start:end")
	}
	if *atype != "" && *clear {
		return fmt.Errorf("-type is meaningless with -clear")
	}
	return c.Label(ctx, name, []service.LabelWindow{{Start: start, End: end, Anomalous: !*clear, Type: *atype}})
}

func runTrain(ctx context.Context, c *service.Client, args []string) error {
	name, _, err := needName(args)
	if err != nil {
		return err
	}
	cthld, err := c.Train(ctx, name)
	if err != nil {
		return err
	}
	fmt.Printf("trained %s, cThld=%.3f\n", name, cthld)
	return nil
}

func runStatus(ctx context.Context, c *service.Client, args []string) error {
	name, _, err := needName(args)
	if err != nil {
		return err
	}
	st, err := c.Status(ctx, name)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d points (%ds interval), %d anomalous in %d windows, trained=%v",
		st.Name, st.Points, st.IntervalSeconds, st.AnomalousPoints, st.LabeledWindows, st.Trained)
	if st.Trained {
		fmt.Printf(" cThld=%.3f", st.CThld)
	}
	if st.CThldPredictor != "" && st.CThldPredictor != "ewma" {
		fmt.Printf(" predictor=%s", st.CThldPredictor)
	}
	if st.TypedModel {
		fmt.Printf(" typed-model")
	}
	fmt.Println()
	return nil
}

// runReady prints the readiness probe. A not-ready service answers 503 but
// still serves the readiness body, so the degraded/quarantined names are
// printed before the non-zero exit.
func runReady(ctx context.Context, c *service.Client) error {
	r, err := c.Ready(ctx)
	if err != nil {
		var apiErr *service.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
			return err
		}
	}
	fmt.Printf("ready: %v\n", r.Ready)
	for _, n := range r.Degraded {
		fmt.Printf("degraded: %s\n", n)
	}
	for _, n := range r.Quarantined {
		fmt.Printf("quarantined: %s\n", n)
	}
	if !r.Ready {
		return fmt.Errorf("service is not ready")
	}
	return nil
}

func runModels(ctx context.Context, c *service.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("models: subcommand required (list|inspect|rollback)")
	}
	switch args[0] {
	case "list":
		names, err := c.Models(ctx)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "inspect":
		name, _, err := needName(args[1:])
		if err != nil {
			return err
		}
		man, err := c.ModelManifest(ctx, name)
		if err != nil {
			return err
		}
		printManifest(man)
		return nil
	case "rollback":
		name, _, err := needName(args[1:])
		if err != nil {
			return err
		}
		man, err := c.RollbackModel(ctx, name)
		if err != nil {
			return err
		}
		fmt.Printf("rolled %s back to generation %d\n", man.Series, man.Current)
		printManifest(man)
		return nil
	default:
		return fmt.Errorf("models: unknown subcommand %q (want list|inspect|rollback)", args[0])
	}
}

// runQueries surfaces and resolves the active-learning label queue. "list"
// prints pending queries most-uncertain-first; "answer" turns one into a
// durable label action, consuming it.
func runQueries(ctx context.Context, c *service.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("queries: subcommand required (list|answer)")
	}
	switch args[0] {
	case "list":
		fs := flag.NewFlagSet("queries list", flag.ContinueOnError)
		series := fs.String("series", "", "only this series' queries")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		qs, err := c.Queries(ctx, *series)
		if err != nil {
			return err
		}
		for _, q := range qs {
			fmt.Printf("%s %d:%d  score=%.3f  points=%d  %s..%s\n",
				q.Series, q.Start, q.End, q.Score, q.Points,
				q.StartTime.Format(time.RFC3339), q.EndTime.Format(time.RFC3339))
		}
		fmt.Printf("%d pending queries\n", len(qs))
		return nil
	case "answer":
		name, rest, err := needName(args[1:])
		if err != nil {
			return err
		}
		fs := flag.NewFlagSet("queries answer", flag.ContinueOnError)
		window := fs.String("window", "", "query window start:end (half open), as printed by queries list")
		anomalous := fs.Bool("anomalous", false, "label the window anomalous (default: normal)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		parts := strings.SplitN(*window, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-window must be start:end")
		}
		start, err1 := strconv.Atoi(parts[0])
		end, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("-window must be numeric start:end")
		}
		if err := c.AnswerQuery(ctx, name, start, end, *anomalous); err != nil {
			return err
		}
		fmt.Printf("answered %s %d:%d anomalous=%v\n", name, start, end, *anomalous)
		return nil
	default:
		return fmt.Errorf("queries: unknown subcommand %q (want list|answer)", args[0])
	}
}

func printManifest(man service.ModelManifest) {
	fmt.Printf("%s: %d generations, current=%d\n", man.Series, len(man.Generations), man.Current)
	for _, g := range man.Generations {
		marker := " "
		if g.Gen == man.Current {
			marker = "*"
		}
		fmt.Printf("%s gen %d  trained %s  points=%d  cthld=%.3f  %d bytes  crc=%08x  fingerprint=%016x  kinds=%s\n",
			marker, g.Gen, g.TrainedAt.Format(time.RFC3339), g.Points, g.CThld, g.Size, g.CRC, g.Fingerprint,
			strings.Join(g.Kinds(), ","))
	}
}

// runWAL is the offline segment toolbox; cat decodes a data directory's
// segmented WAL to stdout via tsdb.Dump. It never mutates the directory, so
// it is safe to point at a live opprenticed's data dir.
func runWAL(args []string) error {
	if len(args) == 0 || args[0] != "cat" {
		return fmt.Errorf("wal: subcommand required (cat)")
	}
	fs := flag.NewFlagSet("wal cat", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "data directory holding the shard-*/ segments")
	series := fs.String("series", "", "only this series' records")
	since := fs.Uint64("since", 0, "skip segments numbered below this")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("wal cat: -data-dir required")
	}
	return walCat(os.Stdout, *dataDir, tsdb.DumpOptions{Series: *series, Since: *since})
}

// walCat renders the segment decode plus a trailing stats line onto w.
func walCat(w io.Writer, dataDir string, opts tsdb.DumpOptions) error {
	stats, err := tsdb.Dump(dataDir, w, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d segments, %d frames (%d corrupt), %d records\n",
		stats.Segments, stats.Frames, stats.CorruptFrames, stats.Records)
	return nil
}

func runAlarms(ctx context.Context, c *service.Client, args []string) error {
	name, rest, err := needName(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("alarms", flag.ContinueOnError)
	since := fs.String("since", "", "only alarms after this RFC 3339 time")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	var t time.Time
	if *since != "" {
		t, err = time.Parse(time.RFC3339, *since)
		if err != nil {
			return fmt.Errorf("-since: %w", err)
		}
	}
	alarms, err := c.Alarms(ctx, name, t)
	if err != nil {
		return err
	}
	for _, a := range alarms {
		fmt.Printf("%s value=%.4g probability=%.2f cthld=%.2f", a.Time.Format(time.RFC3339), a.Value, a.Probability, a.CThld)
		if a.Type != "" {
			fmt.Printf(" type=%s", a.Type)
		}
		fmt.Println()
	}
	fmt.Printf("%d alarms\n", len(alarms))
	return nil
}
