// Command evalbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	evalbench -run all                 # everything, medium scale
//	evalbench -run F9,T4 -scale small  # selected experiments, fast
//	evalbench -list                    # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"opprentice/internal/experiments"
	"opprentice/internal/kpigen"
	"opprentice/internal/report"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids, or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		scale = flag.String("scale", "medium", "dataset scale: small, medium, full")
		seed  = flag.Int64("seed", 1, "random seed")
		trees = flag.Int("trees", 60, "random forest size")
		out   = flag.String("o", "", "write output to file instead of stdout")
		html  = flag.String("html", "", "also write a self-contained HTML report to this file")
	)
	flag.Parse()

	if *list {
		for _, m := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", m.ID, m.Title)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{Seed: *seed, Trees: *trees}
	switch strings.ToLower(*scale) {
	case "small":
		opts.Scale = kpigen.Small
	case "medium":
		opts.Scale = kpigen.Medium
	case "full":
		opts.Scale = kpigen.Full
	default:
		fmt.Fprintf(os.Stderr, "evalbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	var ids []string
	if strings.EqualFold(*run, "all") {
		for _, m := range experiments.Registry() {
			ids = append(ids, m.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}
	var allTables []*experiments.Table
	for _, id := range ids {
		m, ok := experiments.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "evalbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := m.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evalbench: %s: %v\n", m.ID, err)
			os.Exit(1)
		}
		allTables = append(allTables, tables...)
		for _, t := range tables {
			if _, err := t.WriteTo(w); err != nil {
				fmt.Fprintln(os.Stderr, "evalbench:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", m.ID, time.Since(start).Round(time.Millisecond))
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalbench:", err)
			os.Exit(1)
		}
		title := fmt.Sprintf("Opprentice reproduction — %s scale, seed %d", *scale, *seed)
		if err := report.HTML(f, title, allTables); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "evalbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "evalbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "evalbench: HTML report written to %s\n", *html)
	}
}
