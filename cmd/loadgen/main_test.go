package main

// The emitted lines are a wire format: cmd/benchjson parses them with the
// same field rules as `go test -bench` output, so the shape (Benchmark
// prefix, integer iteration count, value-unit pairs including ns/op) is
// pinned here against drift.

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 1000)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Microsecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
		{1.0, 1000 * time.Microsecond},
	} {
		if got := percentile(lats, tc.q); got != tc.want {
			t.Errorf("percentile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile([]time.Duration{7 * time.Millisecond}, 0.999); got != 7*time.Millisecond {
		t.Errorf("single-sample p999 = %v, want 7ms", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestBenchLineShape(t *testing.T) {
	st := &serveStats{lats: []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 40 * time.Millisecond,
	}}
	st.sent.Store(4)
	st.shed.Store(1)
	line := st.benchLine(10*time.Second, 1)

	fields := strings.Fields(line)
	if !strings.HasPrefix(fields[0], "BenchmarkServe/points") {
		t.Fatalf("line %q does not start with BenchmarkServe/points", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters != 4 {
		t.Fatalf("iteration field = %q, want 4: %v", fields[1], err)
	}
	// The tail must be value-unit pairs, exactly how benchjson (and
	// `go test -bench` consumers generally) read it.
	units := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			t.Fatalf("field %d (%q) is not a value: %v", i, fields[i], err)
		}
		units[fields[i+1]] = v
	}
	for _, u := range []string{"ns/op", "p50-ns", "p99-ns", "p999-ns", "pts/s", "shed-pct"} {
		if _, ok := units[u]; !ok {
			t.Errorf("line %q is missing unit %s", line, u)
		}
	}
	if units["p99-ns"] != float64(40*time.Millisecond) {
		t.Errorf("p99-ns = %v, want 4e7 (nearest rank of 4 samples)", units["p99-ns"])
	}
	if units["pts/s"] != 0.4 {
		t.Errorf("pts/s = %v, want 0.4 (4 delivered over 10s)", units["pts/s"])
	}
	if want := 100.0 / 5.0; units["shed-pct"] != want {
		t.Errorf("shed-pct = %v, want %v (1 shed of 5 offered)", units["shed-pct"], want)
	}
}
