// Command loadgen is an open-loop load harness for the opprenticed serving
// hot path. It pre-trains N kpigen-generated series, then drives them
// Prometheus-scrape-style — every -tick, each series receives one fresh
// point over POST /v1/series/{name}/points — and measures the verdict
// latency distribution from each point's SCHEDULED arrival time, so a
// stalled server cannot hide queueing delay by slowing the arrival rate
// (the open-loop correction for coordinated omission). A second phase
// pushes a bulk continuation through the streaming /v1/ingest path and
// measures raw trained-scoring throughput.
//
// Results are printed as `go test -bench`-style lines that cmd/benchjson
// parses into BENCH_serve.json and gates in `make bench-check`:
//
//	BenchmarkServe/points-1  800  412000 ns/op ... 103000 p99-ns ... 80 pts/s  0.00 shed-pct
//	BenchmarkServe/ingest-1  40000  31000 ns/op  32258 pts/s
//
// By default loadgen self-hosts: it spins up the engine and HTTP service
// in-process on a loopback listener, so `make bench-json` needs no running
// daemon. Point -addr at a live opprenticed to load an external instance
// instead (the target must be empty: loadgen creates and trains its own
// series).
//
// Exit status: 0 on success; 1 on setup failure, when any request failed
// with a transport error or 5xx, or when fewer than -min-verdicts verdicts
// came back (the CI smoke gate).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opprentice/internal/engine"
	"opprentice/internal/kpigen"
	"opprentice/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running opprenticed (empty = self-host an in-process daemon on loopback)")
		nSeries     = flag.Int("series", 4, "number of concurrently scraped series")
		tick        = flag.Duration("tick", 50*time.Millisecond, "per-series scrape interval")
		batch       = flag.Int("batch", 1, "points per scrape request (1 = classic per-point scrape; larger batches exercise the batched scoring path)")
		duration    = flag.Duration("duration", 10*time.Second, "measured load window")
		warmup      = flag.Duration("warmup", 2*time.Second, "untimed warmup window before measurement")
		weeks       = flag.Int("weeks", 9, "labeled training history per series, in weeks of hourly points")
		trees       = flag.Int("trees", 20, "forest size per series")
		ingestPts   = flag.Int("ingest-points", 40000, "points to push through streaming /v1/ingest in the throughput phase (0 = skip)")
		seed        = flag.Int64("seed", 7, "kpigen base seed")
		minVerdicts = flag.Int("min-verdicts", 1, "fail unless at least this many verdicts came back (0 disables)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	base := *addr
	if base == "" {
		eng := engine.New(engine.Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
		srv := service.NewServerWithEngine(eng, logger)
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("listen: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		logger.Info("self-hosted opprenticed", "addr", base)
	}
	ctx := context.Background()
	c := service.NewClient(base, &http.Client{Timeout: time.Minute})
	if err := c.Health(ctx); err != nil {
		fatal("target %s not healthy: %v", base, err)
	}

	// Phase 0: create, bootstrap and train every series. Each gets its own
	// kpigen seed so the scrape phase exercises distinct detector states,
	// and the continuation values come from an independent generation of
	// the same profile so they look like live traffic, not replay.
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = *weeks
	names := make([]string, *nSeries)
	conts := make([][]float64, *nSeries)
	setupStart := time.Now()
	for i := range names {
		names[i] = fmt.Sprintf("load-%d", i)
		d := kpigen.Generate(p, *seed+int64(i))
		conts[i] = kpigen.Generate(p, *seed+1000+int64(i)).Series.Values
		if err := c.Create(ctx, names[i], service.CreateRequest{
			IntervalSeconds: 3600,
			Start:           d.Series.Start,
			Trees:           *trees,
		}); err != nil {
			fatal("create %s: %v", names[i], err)
		}
		st, err := c.StreamPoints(ctx)
		if err != nil {
			fatal("stream: %v", err)
		}
		if err := st.Send(names[i], d.Series.Values); err != nil {
			fatal("bootstrap %s: %v", names[i], err)
		}
		if _, err := st.Close(); err != nil {
			fatal("bootstrap %s: %v", names[i], err)
		}
		var windows []service.LabelWindow
		for _, win := range d.Labels.Windows() {
			windows = append(windows, service.LabelWindow{Start: win.Start, End: win.End, Anomalous: true})
		}
		if err := c.Label(ctx, names[i], windows); err != nil {
			fatal("label %s: %v", names[i], err)
		}
		if _, err := c.Train(ctx, names[i]); err != nil {
			fatal("train %s: %v", names[i], err)
		}
	}
	logger.Info("series trained", "count", *nSeries, "weeks", *weeks, "trees", *trees, "took", time.Since(setupStart).Round(time.Millisecond))

	// Phase 1: open-loop scrape fan-in.
	var st serveStats
	var wg sync.WaitGroup
	start := time.Now().Add(250 * time.Millisecond) // common epoch; staggered below
	measureFrom := start.Add(*warmup)
	deadline := measureFrom.Add(*duration)
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Staggering the epochs spreads the fan-in across the tick
			// instead of synchronizing every series' arrival.
			offset := *tick * time.Duration(i) / time.Duration(len(names))
			scrapeSeries(ctx, c, names[i], conts[i], start.Add(offset), measureFrom, deadline, *tick, *batch, &st)
		}(i)
	}
	wg.Wait()

	lats := st.sorted()
	if len(lats) == 0 {
		fatal("no requests completed in the measurement window")
	}
	fmt.Println(st.benchLine(*duration, *batch))

	// Phase 2: streaming ingest throughput over the same trained series.
	if *ingestPts > 0 {
		sent, elapsed, err := ingestPhase(ctx, c, names, conts, *ingestPts)
		if err != nil {
			fatal("ingest phase: %v", err)
		}
		nsPerPt := float64(elapsed.Nanoseconds()) / float64(sent)
		fmt.Printf("BenchmarkServe/ingest-1 \t%8d\t%12.0f ns/op\t%12.0f pts/s\n",
			sent, nsPerPt, float64(sent)/elapsed.Seconds())
	}

	errs := st.errors.Load()
	verdicts := st.verdicts.Load()
	logger.Info("scrape phase",
		"requests", len(lats),
		"p50", lats[len(lats)/2].Round(time.Microsecond),
		"p99", percentile(lats, 0.99).Round(time.Microsecond),
		"verdicts", verdicts,
		"shed", st.shed.Load(),
		"errors", errs)
	if errs > 0 {
		fatal("%d requests failed with transport errors or 5xx", errs)
	}
	if *minVerdicts > 0 && verdicts < int64(*minVerdicts) {
		fatal("only %d verdicts came back, want >= %d (series not serving trained verdicts?)", verdicts, *minVerdicts)
	}
}

// serveStats accumulates the scrape phase across workers.
type serveStats struct {
	mu   sync.Mutex
	lats []time.Duration // scheduled-arrival → response latencies

	sent     atomic.Int64 // requests issued in the measurement window
	shed     atomic.Int64 // 429 sheds plus open-loop ticks skipped while behind
	errors   atomic.Int64 // transport errors and 5xx responses
	verdicts atomic.Int64 // verdicts returned (trained, non-degraded serving)
}

func (s *serveStats) record(lat time.Duration) {
	s.mu.Lock()
	s.lats = append(s.lats, lat)
	s.mu.Unlock()
}

// sorted returns the recorded latencies in ascending order.
func (s *serveStats) sorted() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.lats, func(i, j int) bool { return s.lats[i] < s.lats[j] })
	return s.lats
}

// benchLine renders the scrape phase as one `go test -bench`-style result
// line: ns/op is the mean latency, the percentile tail rides along as
// custom units, pts/s is delivered point throughput (requests × batch) and
// shed-pct the fraction of open-loop arrivals that were shed (429) or
// skipped while catching up. Call sorted first.
func (s *serveStats) benchLine(window time.Duration, batch int) string {
	var sum time.Duration
	for _, l := range s.lats {
		sum += l
	}
	n := len(s.lats)
	mean := float64(sum.Nanoseconds()) / float64(n)
	offered := float64(s.sent.Load() + s.shed.Load())
	shedPct := 0.0
	if offered > 0 {
		shedPct = 100 * float64(s.shed.Load()) / offered
	}
	return fmt.Sprintf("BenchmarkServe/points-1 \t%8d\t%12.0f ns/op\t%12d p50-ns\t%12d p99-ns\t%12d p999-ns\t%12.2f pts/s\t%12.2f shed-pct",
		n, mean,
		percentile(s.lats, 0.50).Nanoseconds(),
		percentile(s.lats, 0.99).Nanoseconds(),
		percentile(s.lats, 0.999).Nanoseconds(),
		float64(n*batch)/window.Seconds(),
		shedPct)
}

// percentile returns the nearest-rank q-quantile (0 < q <= 1) of an
// ascending-sorted sample.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// scrapeSeries drives one series on an absolute open-loop schedule: arrival
// k is due at epoch+k*tick regardless of how long earlier requests took.
// Latency is measured from the scheduled arrival, so time spent queued
// behind a slow server counts against the distribution. When the worker
// falls more than one tick behind, the skipped arrivals are counted as shed
// rather than silently compressed into a slower request rate.
func scrapeSeries(ctx context.Context, c *service.Client, name string, vals []float64, epoch, measureFrom, deadline time.Time, tick time.Duration, batch int, st *serveStats) {
	pts := make([]service.Point, batch)
	next := epoch
	for k := 0; ; k++ {
		if !next.Before(deadline) {
			return
		}
		now := time.Now()
		if now.Before(next) {
			time.Sleep(next.Sub(now))
		} else if behind := now.Sub(next); behind > tick {
			skip := int(behind / tick)
			if next.After(measureFrom) {
				st.shed.Add(int64(skip))
			}
			next = next.Add(time.Duration(skip) * tick)
		}
		sched := next
		for j := range pts {
			pts[j].Value = vals[(k*batch+j)%len(vals)]
		}
		resp, err := c.Append(ctx, name, pts)
		measured := sched.After(measureFrom)
		switch {
		case err == nil:
			if measured {
				st.sent.Add(1)
				st.record(time.Since(sched))
				st.verdicts.Add(int64(len(resp.Verdicts)))
			}
		case isShed(err):
			if measured {
				st.shed.Add(1)
			}
		default:
			if measured {
				st.errors.Add(1)
			}
		}
		next = next.Add(tick)
	}
}

// isShed reports a 429 admission shed — expected under deliberate overload,
// accounted separately from hard failures.
func isShed(err error) bool {
	var apiErr *service.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests
}

// ingestPhase streams total points across the series through /v1/ingest in
// round-robin 64-point frames and returns how many were appended and the
// wall time from first frame to stream close (which covers the final
// flush), i.e. trained end-to-end scoring throughput.
func ingestPhase(ctx context.Context, c *service.Client, names []string, conts [][]float64, total int) (int, time.Duration, error) {
	st, err := c.StreamPoints(ctx)
	if err != nil {
		return 0, 0, err
	}
	const frame = 64
	off := make([]int, len(names))
	start := time.Now()
	sent := 0
	for i := 0; sent < total; i = (i + 1) % len(names) {
		vals := conts[i]
		lo := off[i] % len(vals)
		hi := lo + frame
		if hi > len(vals) {
			hi = len(vals)
		}
		if err := st.Send(names[i], vals[lo:hi]); err != nil {
			return 0, 0, err
		}
		off[i] += hi - lo
		sent += hi - lo
	}
	sum, err := st.Close()
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	if sum.Appended != sent {
		return 0, 0, fmt.Errorf("ingest stream appended %d of %d points", sum.Appended, sent)
	}
	return sent, elapsed, nil
}

// fatal prints the error and exits 1 — setup failures and gate failures
// alike fail the invoking make/CI step.
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
