// Command benchjson converts `go test -bench` output into a small JSON
// artifact and enforces the speedup regression gates.
//
// Two modes, usually chained by the Makefile:
//
//	go test -bench 'RetrainColdVsIncremental|ForestProbFlat' ... | tee bench_retrain.txt
//	benchjson -in bench_retrain.txt -out BENCH_retrain.json
//	benchjson -in bench_retrain.txt -check BENCH_baseline.json
//	go test -bench 'RestoreWarmVsCold' ... | tee bench_restore.txt
//	benchjson -in bench_restore.txt -out BENCH_restore.json
//	benchjson -in bench_restore.txt -check BENCH_baseline.json
//
// The regression gates compare SPEEDUP RATIOS against the committed baseline
// — ratios, not absolute ns/op, so the checks are stable across machines:
//
//   - BenchmarkRetrainColdVsIncremental cold ÷ incremental must stay within
//     -tolerance of the baseline and above the -min-speedup floor, and the
//     flattened forest.Prob hot path must stay allocation-free.
//   - BenchmarkRestoreWarmVsCold cold ÷ warm (the restart speedup the model
//     registry buys) must stay within -tolerance of the baseline and above
//     the -min-restore-speedup floor.
//   - BenchmarkIngestWAL/bulk pts/s must stay above the -min-ingest-pps
//     floor, and the steady-state jsonB/pt ÷ walB/pt compression ratio of
//     the segmented WAL over the legacy JSON-lines encoding must stay above
//     -min-wal-ratio.
//   - The serving SLO from cmd/loadgen (BENCH_serve.json): the open-loop
//     p99 verdict latency of BenchmarkServe/points must stay under
//     -max-serve-p99-ns, and the streaming-ingest trained-scoring
//     throughput of BenchmarkServe/ingest above -min-serve-pps. These are
//     absolute, machine-dependent numbers: the floors are set with ~4x
//     headroom from the operating point documented in EXPERIMENTS.md.
//
// Each gate applies only when its benchmark (pair) is present in the input,
// so the retrain, restore, ingest and serve runs can be checked separately;
// input containing none of them fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	// Metrics holds custom b.ReportMetric pairs by unit (e.g. "pts/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON artifact (BENCH_retrain.json / BENCH_baseline.json).
type Report struct {
	Generated string `json:"generated,omitempty"`
	// Benchmarks maps the benchmark name (without the Benchmark prefix and
	// GOMAXPROCS suffix) to its measurement.
	Benchmarks map[string]Result `json:"benchmarks"`
	// RetrainSpeedup is cold ns/op ÷ incremental ns/op of
	// BenchmarkRetrainColdVsIncremental — the machine-independent number the
	// regression gate compares.
	RetrainSpeedup float64 `json:"retrain_speedup,omitempty"`
	// RestoreSpeedup is cold ns/op ÷ warm ns/op of
	// BenchmarkRestoreWarmVsCold — the restart speedup the model registry's
	// warm path buys over cold retraining.
	RestoreSpeedup float64 `json:"restore_speedup,omitempty"`
	// IngestPointsPerSec is the pts/s metric of BenchmarkIngestWAL/bulk —
	// the raw segmented-WAL ingest throughput (machine-dependent; gated by
	// an absolute floor only).
	IngestPointsPerSec float64 `json:"ingest_points_per_sec,omitempty"`
	// WALBytesPerPoint / JSONBytesPerPoint are the steady-state on-disk
	// bytes per appended point of the segmented WAL vs what the legacy
	// JSON-lines encoding would have written for the same points, from
	// BenchmarkIngestWAL/steady.
	WALBytesPerPoint  float64 `json:"wal_bytes_per_point,omitempty"`
	JSONBytesPerPoint float64 `json:"json_bytes_per_point,omitempty"`
	// WALCompressionRatio is JSONBytesPerPoint ÷ WALBytesPerPoint — the
	// machine-independent compression win the gate compares.
	WALCompressionRatio float64 `json:"wal_compression_ratio,omitempty"`
	// ServeP50Ns/P99Ns/P999Ns are the open-loop verdict latency percentiles
	// of BenchmarkServe/points from cmd/loadgen, measured from each point's
	// scheduled arrival (coordinated-omission corrected).
	ServeP50Ns  float64 `json:"serve_p50_ns,omitempty"`
	ServeP99Ns  float64 `json:"serve_p99_ns,omitempty"`
	ServeP999Ns float64 `json:"serve_p999_ns,omitempty"`
	// ServePointsPerSec is the delivered scrape-path throughput and
	// ServeShedPct the percentage of open-loop arrivals shed (429) or
	// skipped while the generator was behind schedule.
	ServePointsPerSec float64 `json:"serve_points_per_sec,omitempty"`
	ServeShedPct      float64 `json:"serve_shed_pct,omitempty"`
	// ServeIngestPointsPerSec is BenchmarkServe/ingest — end-to-end trained
	// scoring throughput over the streaming /v1/ingest path.
	ServeIngestPointsPerSec float64 `json:"serve_ingest_points_per_sec,omitempty"`
}

const (
	coldName         = "RetrainColdVsIncremental/cold"
	incName          = "RetrainColdVsIncremental/incremental"
	probName         = "ForestProbFlat"
	restoreColdName  = "RestoreWarmVsCold/cold"
	restoreWarmName  = "RestoreWarmVsCold/warm"
	ingestBulkName   = "IngestWAL/bulk"
	ingestSteadyName = "IngestWAL/steady"
	servePointsName  = "Serve/points"
	serveIngestName  = "Serve/ingest"
)

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkIngestWAL/bulk-8   5954   209310 ns/op   1223069 pts/s   5445 B/op   25 allocs/op
//
// The tail after the iteration count is a sequence of "value unit" pairs:
// the standard ns/op, B/op and allocs/op land in dedicated fields, custom
// b.ReportMetric units in Metrics.
func parseLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r := Result{Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	if r.NsPerOp == 0 {
		return "", Result{}, false
	}
	return name, r, true
}

func parse(data []byte) (*Report, error) {
	rep := &Report{Benchmarks: map[string]Result{}}
	for _, line := range strings.Split(string(data), "\n") {
		if name, r, ok := parseLine(strings.TrimSpace(line)); ok {
			rep.Benchmarks[name] = r
		}
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	cold, okC := rep.Benchmarks[coldName]
	inc, okI := rep.Benchmarks[incName]
	if okC && okI && inc.NsPerOp > 0 {
		rep.RetrainSpeedup = cold.NsPerOp / inc.NsPerOp
	}
	rcold, okRC := rep.Benchmarks[restoreColdName]
	rwarm, okRW := rep.Benchmarks[restoreWarmName]
	if okRC && okRW && rwarm.NsPerOp > 0 {
		rep.RestoreSpeedup = rcold.NsPerOp / rwarm.NsPerOp
	}
	rep.IngestPointsPerSec = rep.Benchmarks[ingestBulkName].Metrics["pts/s"]
	steady := rep.Benchmarks[ingestSteadyName].Metrics
	rep.WALBytesPerPoint = steady["walB/pt"]
	rep.JSONBytesPerPoint = steady["jsonB/pt"]
	if rep.WALBytesPerPoint > 0 {
		rep.WALCompressionRatio = rep.JSONBytesPerPoint / rep.WALBytesPerPoint
	}
	serve := rep.Benchmarks[servePointsName].Metrics
	rep.ServeP50Ns = serve["p50-ns"]
	rep.ServeP99Ns = serve["p99-ns"]
	rep.ServeP999Ns = serve["p999-ns"]
	rep.ServePointsPerSec = serve["pts/s"]
	rep.ServeShedPct = serve["shed-pct"]
	rep.ServeIngestPointsPerSec = rep.Benchmarks[serveIngestName].Metrics["pts/s"]
	return rep, nil
}

func main() {
	var (
		in         = flag.String("in", "", "benchmark output file (default stdin)")
		out        = flag.String("out", "", "write parsed results as JSON to this file")
		check      = flag.String("check", "", "baseline JSON to compare the retrain speedup against")
		tolerance  = flag.Float64("tolerance", 0.10, "allowed fractional speedup regression vs the baseline")
		minSpeedup = flag.Float64("min-speedup", 5.0, "absolute cold/incremental retrain speedup floor (0 disables)")
		minRestore = flag.Float64("min-restore-speedup", 3.0, "absolute cold/warm restore speedup floor (0 disables)")
		minIngest  = flag.Float64("min-ingest-pps", 1e6, "absolute bulk WAL ingest points/sec floor (0 disables)")
		minWALR    = flag.Float64("min-wal-ratio", 5.0, "absolute JSON-lines ÷ segmented-WAL bytes-per-point compression ratio floor (0 disables)")
		maxServe99 = flag.Float64("max-serve-p99-ns", 20e6, "open-loop serving p99 verdict latency ceiling in ns from cmd/loadgen (0 disables)")
		minServe   = flag.Float64("min-serve-pps", 8000, "streaming-ingest trained scoring points/sec floor from cmd/loadgen (0 disables)")
	)
	flag.Parse()

	var (
		data []byte
		err  error
	)
	if *in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fatal("read input: %v", err)
	}
	rep, err := parse(data)
	if err != nil {
		fatal("parse: %v", err)
	}

	if *out != "" {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Printf("benchjson: wrote %s (retrain %.2fx, restore %.2fx, ingest %.0f pts/s, wal ratio %.2fx, serve p99 %.1fms / %.0f pts/s)\n",
			*out, rep.RetrainSpeedup, rep.RestoreSpeedup, rep.IngestPointsPerSec, rep.WALCompressionRatio,
			rep.ServeP99Ns/1e6, rep.ServeIngestPointsPerSec)
	}

	if *check == "" {
		return
	}
	baseBuf, err := os.ReadFile(*check)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base Report
	if err := json.Unmarshal(baseBuf, &base); err != nil {
		fatal("parse baseline %s: %v", *check, err)
	}

	failed := false
	if rep.RetrainSpeedup == 0 && rep.RestoreSpeedup == 0 && rep.IngestPointsPerSec == 0 && rep.ServeP99Ns == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL: input has no RetrainColdVsIncremental or RestoreWarmVsCold pair and no IngestWAL or Serve run")
		failed = true
	}
	if rep.RetrainSpeedup > 0 {
		floor := base.RetrainSpeedup * (1 - *tolerance)
		if base.RetrainSpeedup > 0 && rep.RetrainSpeedup < floor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: retrain speedup %.2fx regressed >%.0f%% vs baseline %.2fx (floor %.2fx)\n",
				rep.RetrainSpeedup, *tolerance*100, base.RetrainSpeedup, floor)
			failed = true
		}
		if *minSpeedup > 0 && rep.RetrainSpeedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: retrain speedup %.2fx below the absolute %.1fx floor\n",
				rep.RetrainSpeedup, *minSpeedup)
			failed = true
		}
	}
	if rep.RestoreSpeedup > 0 {
		floor := base.RestoreSpeedup * (1 - *tolerance)
		if base.RestoreSpeedup > 0 && rep.RestoreSpeedup < floor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: restore speedup %.2fx regressed >%.0f%% vs baseline %.2fx (floor %.2fx)\n",
				rep.RestoreSpeedup, *tolerance*100, base.RestoreSpeedup, floor)
			failed = true
		}
		if *minRestore > 0 && rep.RestoreSpeedup < *minRestore {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: warm-restore speedup %.2fx below the absolute %.1fx floor\n",
				rep.RestoreSpeedup, *minRestore)
			failed = true
		}
	}
	if prob, ok := rep.Benchmarks[probName]; ok && prob.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: forest.Prob allocates %d objects/op, want 0\n", prob.AllocsPerOp)
		failed = true
	}
	if rep.IngestPointsPerSec > 0 && *minIngest > 0 && rep.IngestPointsPerSec < *minIngest {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: bulk WAL ingest %.0f pts/s below the %.0f pts/s floor\n",
			rep.IngestPointsPerSec, *minIngest)
		failed = true
	}
	if rep.WALCompressionRatio > 0 {
		if *minWALR > 0 && rep.WALCompressionRatio < *minWALR {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: WAL compression ratio %.2fx (%.1f json B/pt ÷ %.1f wal B/pt) below the %.1fx floor\n",
				rep.WALCompressionRatio, rep.JSONBytesPerPoint, rep.WALBytesPerPoint, *minWALR)
			failed = true
		}
		floor := base.WALCompressionRatio * (1 - *tolerance)
		if base.WALCompressionRatio > 0 && rep.WALCompressionRatio < floor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: WAL compression ratio %.2fx regressed >%.0f%% vs baseline %.2fx (floor %.2fx)\n",
				rep.WALCompressionRatio, *tolerance*100, base.WALCompressionRatio, floor)
			failed = true
		}
	}
	if rep.ServeP99Ns > 0 && *maxServe99 > 0 && rep.ServeP99Ns > *maxServe99 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: serving p99 verdict latency %.1fms over the %.1fms ceiling\n",
			rep.ServeP99Ns/1e6, *maxServe99/1e6)
		failed = true
	}
	if rep.ServeIngestPointsPerSec > 0 && *minServe > 0 && rep.ServeIngestPointsPerSec < *minServe {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: streaming trained scoring %.0f pts/s below the %.0f pts/s floor\n",
			rep.ServeIngestPointsPerSec, *minServe)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	var oks []string
	if rep.RetrainSpeedup > 0 {
		oks = append(oks, fmt.Sprintf("retrain speedup %.2fx (baseline %.2fx)", rep.RetrainSpeedup, base.RetrainSpeedup))
	}
	if rep.RestoreSpeedup > 0 {
		oks = append(oks, fmt.Sprintf("restore speedup %.2fx (baseline %.2fx)", rep.RestoreSpeedup, base.RestoreSpeedup))
	}
	if rep.IngestPointsPerSec > 0 {
		oks = append(oks, fmt.Sprintf("bulk ingest %.0f pts/s (floor %.0f)", rep.IngestPointsPerSec, *minIngest))
	}
	if rep.WALCompressionRatio > 0 {
		oks = append(oks, fmt.Sprintf("wal compression %.2fx (floor %.1fx)", rep.WALCompressionRatio, *minWALR))
	}
	if rep.ServeP99Ns > 0 {
		oks = append(oks, fmt.Sprintf("serve p99 %.1fms (ceiling %.1fms)", rep.ServeP99Ns/1e6, *maxServe99/1e6))
	}
	if rep.ServeIngestPointsPerSec > 0 {
		oks = append(oks, fmt.Sprintf("serve ingest %.0f pts/s (floor %.0f)", rep.ServeIngestPointsPerSec, *minServe))
	}
	fmt.Printf("benchjson: OK: %s (tolerance %.0f%%)\n", strings.Join(oks, ", "), *tolerance*100)
}

// fatal prints an error and exits 2 (distinct from the regression gate's 1).
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(2)
}
