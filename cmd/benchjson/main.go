// Command benchjson converts `go test -bench` output into a small JSON
// artifact and enforces the speedup regression gates.
//
// Two modes, usually chained by the Makefile:
//
//	go test -bench 'RetrainColdVsIncremental|ForestProbFlat' ... | tee bench_retrain.txt
//	benchjson -in bench_retrain.txt -out BENCH_retrain.json
//	benchjson -in bench_retrain.txt -check BENCH_baseline.json
//	go test -bench 'RestoreWarmVsCold' ... | tee bench_restore.txt
//	benchjson -in bench_restore.txt -out BENCH_restore.json
//	benchjson -in bench_restore.txt -check BENCH_baseline.json
//
// The regression gates compare SPEEDUP RATIOS against the committed baseline
// — ratios, not absolute ns/op, so the checks are stable across machines:
//
//   - BenchmarkRetrainColdVsIncremental cold ÷ incremental must stay within
//     -tolerance of the baseline and above the -min-speedup floor, and the
//     flattened forest.Prob hot path must stay allocation-free.
//   - BenchmarkRestoreWarmVsCold cold ÷ warm (the restart speedup the model
//     registry buys) must stay within -tolerance of the baseline and above
//     the -min-restore-speedup floor.
//
// Each gate applies only when its benchmark pair is present in the input, so
// the retrain and restore runs can be checked separately; input containing
// neither pair fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's parsed measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Report is the JSON artifact (BENCH_retrain.json / BENCH_baseline.json).
type Report struct {
	Generated string `json:"generated,omitempty"`
	// Benchmarks maps the benchmark name (without the Benchmark prefix and
	// GOMAXPROCS suffix) to its measurement.
	Benchmarks map[string]Result `json:"benchmarks"`
	// RetrainSpeedup is cold ns/op ÷ incremental ns/op of
	// BenchmarkRetrainColdVsIncremental — the machine-independent number the
	// regression gate compares.
	RetrainSpeedup float64 `json:"retrain_speedup,omitempty"`
	// RestoreSpeedup is cold ns/op ÷ warm ns/op of
	// BenchmarkRestoreWarmVsCold — the restart speedup the model registry's
	// warm path buys over cold retraining.
	RestoreSpeedup float64 `json:"restore_speedup,omitempty"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkRetrainColdVsIncremental/cold-8   10   46604300 ns/op   9352404 B/op   54211 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

const (
	coldName        = "RetrainColdVsIncremental/cold"
	incName         = "RetrainColdVsIncremental/incremental"
	probName        = "ForestProbFlat"
	restoreColdName = "RestoreWarmVsCold/cold"
	restoreWarmName = "RestoreWarmVsCold/warm"
)

func parse(data []byte) (*Report, error) {
	rep := &Report{Benchmarks: map[string]Result{}}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var r Result
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks[m[1]] = r
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	cold, okC := rep.Benchmarks[coldName]
	inc, okI := rep.Benchmarks[incName]
	if okC && okI && inc.NsPerOp > 0 {
		rep.RetrainSpeedup = cold.NsPerOp / inc.NsPerOp
	}
	rcold, okRC := rep.Benchmarks[restoreColdName]
	rwarm, okRW := rep.Benchmarks[restoreWarmName]
	if okRC && okRW && rwarm.NsPerOp > 0 {
		rep.RestoreSpeedup = rcold.NsPerOp / rwarm.NsPerOp
	}
	return rep, nil
}

func main() {
	var (
		in         = flag.String("in", "", "benchmark output file (default stdin)")
		out        = flag.String("out", "", "write parsed results as JSON to this file")
		check      = flag.String("check", "", "baseline JSON to compare the retrain speedup against")
		tolerance  = flag.Float64("tolerance", 0.10, "allowed fractional speedup regression vs the baseline")
		minSpeedup = flag.Float64("min-speedup", 5.0, "absolute cold/incremental retrain speedup floor (0 disables)")
		minRestore = flag.Float64("min-restore-speedup", 3.0, "absolute cold/warm restore speedup floor (0 disables)")
	)
	flag.Parse()

	var (
		data []byte
		err  error
	)
	if *in == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fatal("read input: %v", err)
	}
	rep, err := parse(data)
	if err != nil {
		fatal("parse: %v", err)
	}

	if *out != "" {
		rep.Generated = time.Now().UTC().Format(time.RFC3339)
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal: %v", err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
		fmt.Printf("benchjson: wrote %s (retrain speedup %.2fx, restore speedup %.2fx)\n",
			*out, rep.RetrainSpeedup, rep.RestoreSpeedup)
	}

	if *check == "" {
		return
	}
	baseBuf, err := os.ReadFile(*check)
	if err != nil {
		fatal("read baseline: %v", err)
	}
	var base Report
	if err := json.Unmarshal(baseBuf, &base); err != nil {
		fatal("parse baseline %s: %v", *check, err)
	}

	failed := false
	if rep.RetrainSpeedup == 0 && rep.RestoreSpeedup == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL: input has neither a RetrainColdVsIncremental nor a RestoreWarmVsCold pair")
		failed = true
	}
	if rep.RetrainSpeedup > 0 {
		floor := base.RetrainSpeedup * (1 - *tolerance)
		if base.RetrainSpeedup > 0 && rep.RetrainSpeedup < floor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: retrain speedup %.2fx regressed >%.0f%% vs baseline %.2fx (floor %.2fx)\n",
				rep.RetrainSpeedup, *tolerance*100, base.RetrainSpeedup, floor)
			failed = true
		}
		if *minSpeedup > 0 && rep.RetrainSpeedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: retrain speedup %.2fx below the absolute %.1fx floor\n",
				rep.RetrainSpeedup, *minSpeedup)
			failed = true
		}
	}
	if rep.RestoreSpeedup > 0 {
		floor := base.RestoreSpeedup * (1 - *tolerance)
		if base.RestoreSpeedup > 0 && rep.RestoreSpeedup < floor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: restore speedup %.2fx regressed >%.0f%% vs baseline %.2fx (floor %.2fx)\n",
				rep.RestoreSpeedup, *tolerance*100, base.RestoreSpeedup, floor)
			failed = true
		}
		if *minRestore > 0 && rep.RestoreSpeedup < *minRestore {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL: warm-restore speedup %.2fx below the absolute %.1fx floor\n",
				rep.RestoreSpeedup, *minRestore)
			failed = true
		}
	}
	if prob, ok := rep.Benchmarks[probName]; ok && prob.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "benchjson: FAIL: forest.Prob allocates %d objects/op, want 0\n", prob.AllocsPerOp)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	switch {
	case rep.RetrainSpeedup > 0 && rep.RestoreSpeedup > 0:
		fmt.Printf("benchjson: OK: retrain speedup %.2fx, restore speedup %.2fx (baselines %.2fx/%.2fx, tolerance %.0f%%)\n",
			rep.RetrainSpeedup, rep.RestoreSpeedup, base.RetrainSpeedup, base.RestoreSpeedup, *tolerance*100)
	case rep.RestoreSpeedup > 0:
		fmt.Printf("benchjson: OK: restore speedup %.2fx (baseline %.2fx, tolerance %.0f%%)\n",
			rep.RestoreSpeedup, base.RestoreSpeedup, *tolerance*100)
	default:
		fmt.Printf("benchjson: OK: retrain speedup %.2fx (baseline %.2fx, tolerance %.0f%%)\n",
			rep.RetrainSpeedup, base.RetrainSpeedup, *tolerance*100)
	}
}

// fatal prints an error and exits 2 (distinct from the regression gate's 1).
func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(2)
}
