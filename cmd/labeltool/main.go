// Command labeltool is the terminal counterpart of the paper's labeling tool
// (§4.2): it renders a KPI as an ASCII line graph and lets the operator
// navigate (forward, backward, zoom) and label whole windows of anomalies,
// which is what keeps labeling down to minutes per month of data.
//
// Usage:
//
//	labeltool -input pv.csv -o labeled.csv
//
// Commands at the prompt:
//
//	n / p         move forward / backward one screen
//	zi / zo       zoom in / out
//	g <index>     jump to point index
//	l <a> <b>     label points [a, b] anomalous
//	u <a> <b>     clear labels on [a, b]
//	w             list labeled windows
//	s             save and continue, q: save and quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"opprentice/internal/timeseries"
)

func main() {
	var (
		input = flag.String("input", "", "CSV to label (timestamp,value[,label])")
		out   = flag.String("o", "", "output CSV (default: overwrite input)")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" {
		*out = *input
	}
	f, err := os.Open(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labeltool:", err)
		os.Exit(1)
	}
	series, labels, err := timeseries.ReadCSV(f, *input)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "labeltool:", err)
		os.Exit(1)
	}
	if labels == nil {
		labels = make(timeseries.Labels, series.Len())
	}
	tool := &tool{series: series, labels: labels, outPath: *out, span: 240}
	tool.run(os.Stdin, os.Stdout)
}

type tool struct {
	series  *timeseries.Series
	labels  timeseries.Labels
	outPath string
	pos     int // left edge of the viewport
	span    int // viewport width in points
}

func (t *tool) run(in *os.File, w *os.File) {
	t.render(w)
	sc := bufio.NewScanner(in)
	fmt.Fprint(w, "> ")
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			fmt.Fprint(w, "> ")
			continue
		}
		switch fields[0] {
		case "n":
			t.pos = clamp(t.pos+t.span, 0, max(0, t.series.Len()-t.span))
		case "p":
			t.pos = clamp(t.pos-t.span, 0, max(0, t.series.Len()-t.span))
		case "zi":
			t.span = max(20, t.span/2)
		case "zo":
			t.span = min(t.series.Len(), t.span*2)
		case "g":
			if i, ok := atoi(fields, 1); ok {
				t.pos = clamp(i, 0, max(0, t.series.Len()-t.span))
			}
		case "l", "u":
			a, okA := atoi(fields, 1)
			b, okB := atoi(fields, 2)
			if !okA || !okB || a > b {
				fmt.Fprintln(w, "usage: l <start> <end> (inclusive indices)")
				break
			}
			val := fields[0] == "l"
			for i := clamp(a, 0, t.series.Len()-1); i <= clamp(b, 0, t.series.Len()-1); i++ {
				t.labels[i] = val
			}
		case "w":
			for _, win := range t.labels.Windows() {
				fmt.Fprintf(w, "  [%d, %d) %d points\n", win.Start, win.End, win.Len())
			}
			fmt.Fprintf(w, "  %d windows, %d anomalous points\n", len(t.labels.Windows()), t.labels.Count())
		case "s", "q":
			if err := t.save(); err != nil {
				fmt.Fprintln(w, "save failed:", err)
			} else {
				fmt.Fprintln(w, "saved to", t.outPath)
			}
			if fields[0] == "q" {
				return
			}
		case "h", "help", "?":
			fmt.Fprintln(w, "commands: n p zi zo g <i> | l <a> <b> u <a> <b> | w s q")
		default:
			fmt.Fprintln(w, "unknown command (h for help)")
		}
		if fields[0] != "w" && fields[0] != "s" {
			t.render(w)
		}
		fmt.Fprint(w, "> ")
	}
}

// render draws the viewport as an ASCII plot with labeled points shown '#'
// and, like the paper's tool (Fig 4), the same window one week earlier
// overlaid in a light '.' trace to aid seasonal comparison.
func (t *tool) render(w *os.File) {
	lo := t.pos
	hi := min(t.series.Len(), lo+t.span)
	vals := t.series.Values[lo:hi]
	labs := t.labels[lo:hi]
	ppw, _ := t.series.PointsPerWeek()
	const width, height = 100, 14
	cells := min(width, len(vals))
	minV, maxV := math.Inf(1), math.Inf(-1)
	buckets := make([]float64, cells)
	prevWeek := make([]float64, cells)
	hasPrev := make([]bool, cells)
	anom := make([]bool, cells)
	for b := 0; b < cells; b++ {
		s, e := b*len(vals)/cells, (b+1)*len(vals)/cells
		if e <= s {
			e = s + 1
		}
		sum := 0.0
		prevSum, prevN := 0.0, 0
		for i := s; i < e; i++ {
			sum += vals[i]
			anom[b] = anom[b] || labs[i]
			if ppw > 0 && lo+i-ppw >= 0 {
				prevSum += t.series.Values[lo+i-ppw]
				prevN++
			}
		}
		buckets[b] = sum / float64(e-s)
		minV = math.Min(minV, buckets[b])
		maxV = math.Max(maxV, buckets[b])
		if prevN > 0 {
			prevWeek[b] = prevSum / float64(prevN)
			hasPrev[b] = true
			minV = math.Min(minV, prevWeek[b])
			maxV = math.Max(maxV, prevWeek[b])
		}
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cells))
	}
	// Light last-week trace first so the current curve draws over it.
	for b := range prevWeek {
		if !hasPrev[b] {
			continue
		}
		row := int((maxV - prevWeek[b]) / (maxV - minV) * float64(height-1))
		grid[row][b] = '.'
	}
	for b, v := range buckets {
		row := int((maxV - v) / (maxV - minV) * float64(height-1))
		ch := byte('*')
		if anom[b] {
			ch = '#'
		}
		grid[row][b] = ch
	}
	fmt.Fprintf(w, "\n%s  points [%d, %d) of %d  (# = labeled anomalous, . = same window last week)\n",
		t.series.Name, lo, hi, t.series.Len())
	fmt.Fprintf(w, "%s .. %s\n", t.series.TimeAt(lo).Format("2006-01-02 15:04"),
		t.series.TimeAt(hi-1).Format("2006-01-02 15:04"))
	fmt.Fprintf(w, "max %.4g\n", maxV)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s\n", row)
	}
	fmt.Fprintf(w, "min %.4g\n", minV)
}

func (t *tool) save() error {
	f, err := os.Create(t.outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	return timeseries.WriteCSV(f, t.series, t.labels)
}

func atoi(fields []string, i int) (int, bool) {
	if i >= len(fields) {
		return 0, false
	}
	v, err := strconv.Atoi(fields[i])
	return v, err == nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
