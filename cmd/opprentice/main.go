// Command opprentice trains the framework on labeled KPI data and runs the
// full weekly detection loop, reporting per-week accuracy against the
// operators' preference and the anomalous windows it would have alerted on.
//
// Usage:
//
//	opprentice -input pv.csv -recall 0.66 -precision 0.66
//	opprentice -kpi srt -scale medium          # synthetic data
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

func main() {
	var (
		input     = flag.String("input", "", "labeled CSV (timestamp,value,label); mutually exclusive with -kpi")
		kpi       = flag.String("kpi", "", "synthetic KPI: pv, sr, srt")
		scale     = flag.String("scale", "medium", "synthetic scale: small, medium, full")
		seed      = flag.Int64("seed", 1, "random seed")
		recall    = flag.Float64("recall", 0.66, "accuracy preference: minimum recall")
		precision = flag.Float64("precision", 0.66, "accuracy preference: minimum precision")
		trees     = flag.Int("trees", 60, "random forest size")
		withCV    = flag.Bool("cv", false, "also run the 5-fold cThld baseline each week (slow)")
		extended  = flag.Bool("extended", false, "add the emerging detectors (CUSUM, rate-of-change) to the pool")
		minDur    = flag.Int("min-duration", 1, "report only alerted windows of at least this many points (§6 duration filter)")
	)
	flag.Parse()

	series, labels, err := loadData(*input, *kpi, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprentice:", err)
		os.Exit(1)
	}
	ppw, err := series.PointsPerWeek()
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprentice:", err)
		os.Exit(1)
	}
	fmt.Printf("data: %s — %d points at %v interval (%d weeks), %.1f%% labeled anomalous\n",
		series.Name, series.Len(), series.Interval, series.Len()/ppw, 100*labels.Fraction())

	var dets []detectors.Detector
	var err2 error
	if *extended {
		dets, err2 = detectors.ExtendedRegistry(series.Interval)
	} else {
		dets, err2 = detectors.Registry(series.Interval)
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, "opprentice:", err2)
		os.Exit(1)
	}
	start := time.Now()
	feats, err := core.Extract(series, dets, core.ExtractConfig{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprentice:", err)
		os.Exit(1)
	}
	fmt.Printf("extracted %d features per point in %v\n", len(feats.Cols), time.Since(start).Round(time.Millisecond))

	pref := stats.Preference{Recall: *recall, Precision: *precision}
	res, err := core.Run(feats, labels, ppw, core.Config{
		Preference:   pref,
		Forest:       forest.Config{Trees: *trees, Seed: *seed},
		SkipWeeklyCV: !*withCV,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "opprentice:", err)
		os.Exit(1)
	}

	fmt.Printf("\nweekly detection (preference: recall >= %.2f, precision >= %.2f):\n", *recall, *precision)
	fmt.Println("week  cthld  recall  precision  satisfied  alarms")
	satisfied := 0
	for _, w := range res.Weeks {
		r, p := w.EWMA.Recall(), w.EWMA.Precision()
		ok := pref.Satisfied(r, p)
		if ok {
			satisfied++
		}
		fmt.Printf("%4d  %.3f  %6.3f  %9.3f  %9v  %6d\n",
			w.Week+1, w.EWMACThld, r, p, ok, w.EWMA.TP+w.EWMA.FP)
	}
	fmt.Printf("\n%d/%d weeks satisfied the preference with the online (EWMA) cThld\n",
		satisfied, len(res.Weeks))

	// Alerted windows of the final week, as an operator would see them,
	// after the §6 duration filter.
	last := res.Weeks[len(res.Weeks)-1]
	pred := make(timeseries.Labels, len(last.Scores))
	for i, s := range last.Scores {
		pred[i] = s >= last.EWMACThld
	}
	pred = core.FilterByDuration(pred, *minDur)
	fmt.Printf("\nalerted windows in week %d (min duration %d):\n", last.Week+1, *minDur)
	base := last.Week * ppw
	for _, w := range pred.Windows() {
		fmt.Printf("  %s .. %s (%d points)\n",
			series.TimeAt(base+w.Start).Format(time.RFC3339),
			series.TimeAt(base+w.End-1).Format(time.RFC3339),
			w.Len())
	}
}

// loadData reads the labeled CSV or generates a synthetic KPI.
func loadData(input, kpi, scale string, seed int64) (*timeseries.Series, timeseries.Labels, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		s, labels, err := timeseries.ReadCSV(f, strings.TrimSuffix(input, ".csv"))
		if err != nil {
			return nil, nil, err
		}
		if labels == nil {
			return nil, nil, fmt.Errorf("%s has no label column; label it first (cmd/labeltool)", input)
		}
		return s, labels, nil
	}
	if kpi == "" {
		return nil, nil, fmt.Errorf("need -input or -kpi")
	}
	var sc kpigen.Scale
	switch strings.ToLower(scale) {
	case "small":
		sc = kpigen.Small
	case "medium":
		sc = kpigen.Medium
	case "full":
		sc = kpigen.Full
	default:
		return nil, nil, fmt.Errorf("unknown scale %q", scale)
	}
	for _, p := range kpigen.Profiles(sc) {
		if p.Name == strings.ToLower(kpi) {
			d := kpigen.Generate(p, seed)
			return d.Series, d.Labels, nil
		}
	}
	return nil, nil, fmt.Errorf("unknown KPI %q (want pv, sr or srt)", kpi)
}
