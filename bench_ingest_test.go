package opprentice

// Ingest benchmarks for the segmented binary WAL, reported as the
// BENCH_ingest.json artifact:
//
//   - bulk: parallel 256-point batches across 16 series, the shape the
//     streaming /v1/ingest path produces. Reports pts/s, gated by
//     benchjson -min-ingest-pps.
//   - steady: 64 series appending one point at a time under a 2 ms
//     group-commit window — the steady-state monitoring shape where the
//     old JSON-lines log was most wasteful. Reports walB/pt (on-disk
//     segment bytes per point) and jsonB/pt (what the legacy encoding
//     would have written for the same points); benchjson -min-wal-ratio
//     gates jsonB/pt ÷ walB/pt.
//
// Run with:
//
//	go test -bench=BenchmarkIngestWAL -benchtime 2s
import (
	"context"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"opprentice/internal/tsdb"
)

// walSegmentBytes sums the on-disk size of every WAL segment under dir.
func walSegmentBytes(b *testing.B, dir string) int64 {
	b.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".seg" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return total
}

// benchWAL opens a fresh segmented store with nSeries created series and
// returns it plus the series names. KPI-like integer-ish values compress the
// way real per-minute counters do; the per-series XOR chains see them.
func benchWAL(b *testing.B, nSeries int, opts ...tsdb.Option) (*tsdb.Store, []string, string) {
	b.Helper()
	dir := b.TempDir()
	s, err := tsdb.Open(dir, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	names := make([]string, nSeries)
	for i := range names {
		names[i] = fmt.Sprintf("pv-%03d", i)
		meta := tsdb.Meta{
			Name:            names[i],
			Start:           time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC),
			IntervalSeconds: 60,
			Recall:          0.66,
			Precision:       0.66,
			Trees:           60,
		}
		if err := s.CreateSeries(meta); err != nil {
			b.Fatal(err)
		}
	}
	return s, names, dir
}

// kpiValues models a page-view style counter: a smooth daily shape plus a
// small integer wobble, so consecutive points share most of their bits.
func kpiValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(9000 + 40*(i%24) + (i*7)%13)
	}
	return vals
}

// BenchmarkIngestWAL measures the segmented WAL's write path directly against
// the store — no HTTP, no engine — so the artifact numbers isolate the log.
func BenchmarkIngestWAL(b *testing.B) {
	const batch = 256

	b.Run("bulk", func(b *testing.B) {
		const nSeries = 16
		s, names, _ := benchWAL(b, nSeries, tsdb.WithShards(4))
		vals := kpiValues(batch)
		var next atomic.Int64
		// Appends block on the group fsync, so extra goroutines overlap
		// commits even on one CPU — SetParallelism models concurrent
		// clients, not extra cores.
		b.SetParallelism(4)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			name := names[int(next.Add(1)-1)%nSeries]
			for pb.Next() {
				if err := s.AppendPoints(context.Background(), name, vals); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		elapsed := b.Elapsed().Seconds()
		if elapsed > 0 {
			b.ReportMetric(float64(b.N)*batch/elapsed, "pts/s")
		}
	})

	b.Run("steady", func(b *testing.B) {
		const nSeries = 64
		s, names, dir := benchWAL(b, nSeries,
			tsdb.WithShards(4), tsdb.WithGroupCommit(2*time.Millisecond))
		vals := kpiValues(512)
		// Precompute what the legacy JSON-lines encoding would write for each
		// value, so the timed loop only pays one atomic add for bookkeeping.
		lineSize := make([]int64, len(vals))
		for i, v := range vals {
			lineSize[i] = int64(tsdb.LegacyPointsLineSize([]float64{v}))
		}
		// Creates are durable before CreateSeries returns, so the segment bytes
		// on disk here are pure series-bootstrap overhead; subtracting them
		// leaves the marginal cost per appended point.
		before := walSegmentBytes(b, dir)
		var next atomic.Int64
		var jsonBytes atomic.Int64
		// Many concurrent single-point writers are the whole premise of
		// group commit; without them every point would buy its own frame.
		b.SetParallelism(16)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			name := names[int(next.Add(1)-1)%nSeries]
			i := 0
			for pb.Next() {
				if err := s.AppendPoints(context.Background(), name, vals[i:i+1]); err != nil {
					b.Fatal(err)
				}
				jsonBytes.Add(lineSize[i])
				i = (i + 1) % len(vals)
			}
		})
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		pts := float64(b.N)
		if pts > 0 {
			b.ReportMetric(float64(walSegmentBytes(b, dir)-before)/pts, "walB/pt")
			b.ReportMetric(float64(jsonBytes.Load())/pts, "jsonB/pt")
		}
	})
}
