// Package opprentice is a from-scratch Go implementation of "Opprentice:
// Towards Practical and Automatic Anomaly Detection Through Machine
// Learning" (Liu et al., IMC 2015).
//
// Opprentice removes the detector-selection and threshold-tuning burden from
// KPI anomaly detection: operators only label historical anomalies with a
// convenient tool, while 14 classic detectors in 133 parameter
// configurations act as feature extractors for a random forest that learns
// the operators' notion of "anomalous" and is thresholded to satisfy an
// accuracy preference such as "recall ≥ 0.66 and precision ≥ 0.66".
//
// The typical lifecycle:
//
//	dets, _ := opprentice.Detectors(time.Minute)
//	mon, _ := opprentice.NewMonitor(history, labels, dets, opprentice.MonitorConfig{})
//	for v := range incoming {
//		if mon.Step(v).Anomalous {
//			alert()
//		}
//	}
//	// weekly: label the new data, then
//	mon.Retrain(fullHistory, fullLabels, freshDets)
//
// For offline evaluation and the paper's experiments, see Run, RunExperiment
// and the cmd/evalbench tool.
package opprentice

import (
	"time"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/experiments"
	"opprentice/internal/kpigen"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// Core data types.
type (
	// Series is a fixed-interval KPI time series.
	Series = timeseries.Series
	// Labels marks each point of a series anomalous or not.
	Labels = timeseries.Labels
	// Window is a half-open range of anomalous points.
	Window = timeseries.Window
	// Preference is the operators' accuracy preference
	// "recall ≥ Recall and precision ≥ Precision".
	Preference = stats.Preference
	// Detector is a streaming basic detector acting as a feature extractor.
	Detector = detectors.Detector
	// Features is the extracted severity matrix.
	Features = core.Features
	// Monitor is the online detection loop.
	Monitor = core.Monitor
	// MonitorConfig configures NewMonitor.
	MonitorConfig = core.MonitorConfig
	// Verdict is the monitor's judgment of one point.
	Verdict = core.Verdict
	// Config parameterizes an offline Run.
	Config = core.Config
	// Result is an offline Run's weekly outcome.
	Result = core.Result
)

// NewSeries returns an empty series with the given name, origin and
// interval.
func NewSeries(name string, start time.Time, interval time.Duration) *Series {
	return timeseries.New(name, start, interval)
}

// Detectors builds the paper's 133 detector configurations (Table 3) for a
// series with the given sampling interval.
func Detectors(interval time.Duration) ([]Detector, error) {
	return detectors.Registry(interval)
}

// NewMonitor trains an online monitor on labeled history; see core.Monitor.
func NewMonitor(history *Series, labels Labels, dets []Detector, cfg MonitorConfig) (*Monitor, error) {
	return core.NewMonitor(history, labels, dets, cfg)
}

// Extract runs all detector configurations over a series and returns the
// severity matrix used for training and evaluation.
func Extract(s *Series, dets []Detector) (*Features, error) {
	return core.Extract(s, dets, core.ExtractConfig{})
}

// Run executes the full offline Opprentice loop — weekly incremental
// retraining, oracle and predicted cThlds — over an extracted feature
// matrix. ppw is the series' points per week.
func Run(f *Features, labels Labels, ppw int, cfg Config) (*Result, error) {
	return core.Run(f, labels, ppw, cfg)
}

// Experiment identifiers accepted by RunExperiment; see DESIGN.md for the
// per-experiment index.
func Experiments() []string {
	regs := experiments.Registry()
	out := make([]string, len(regs))
	for i, m := range regs {
		out[i] = m.ID
	}
	return out
}

// RunExperiment regenerates one table or figure of the paper's evaluation
// (e.g. "F9", "T4") and returns its printable tables.
func RunExperiment(id string, opts experiments.Options) ([]*experiments.Table, error) {
	m, ok := experiments.Find(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return m.Run(opts)
}

// UnknownExperimentError reports a RunExperiment id that matches no
// registered experiment.
type UnknownExperimentError struct{ ID string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "opprentice: unknown experiment " + e.ID
}

// SyntheticKPI generates one of the paper's three case-study KPIs ("pv",
// "sr", "srt") with ground-truth labels, at kpigen scales "small", "medium"
// or "full".
func SyntheticKPI(name string, scale kpigen.Scale, seed int64) (*Series, Labels, error) {
	for _, p := range kpigen.Profiles(scale) {
		if p.Name == name {
			d := kpigen.Generate(p, seed)
			return d.Series, d.Labels, nil
		}
	}
	return nil, nil, &UnknownKPIError{Name: name}
}

// UnknownKPIError reports a SyntheticKPI name that matches no profile.
type UnknownKPIError struct{ Name string }

// Error implements error.
func (e *UnknownKPIError) Error() string {
	return "opprentice: unknown synthetic KPI " + e.Name + " (want pv, sr or srt)"
}
