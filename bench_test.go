package opprentice

// One benchmark per evaluation table/figure (regenerating it end to end at
// small scale), plus the §5.8 microbenchmarks — feature-extraction lag,
// classification lag, training time — and the design ablations listed in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/experiments"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

// benchOptions keeps full-experiment benches tractable: small data, small
// forests. Shapes are scale-stable; evalbench -scale medium gives the
// reported numbers.
func benchOptions() experiments.Options {
	return experiments.Options{Scale: kpigen.Small, Seed: 1, Trees: 12}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	m, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	o := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// Table and figure benchmarks, one per evaluation artifact.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "F1") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "T3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "F5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "F6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "F7") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "F9") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "T4") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "F10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "F11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "F12") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "F14") }

func BenchmarkFig13(b *testing.B) {
	// Fig 13 runs 5-fold cross-validation every week; use the smallest
	// forest that preserves the comparison.
	m, _ := experiments.Find("F13")
	o := benchOptions()
	o.Trees = 8
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPipeline prepares a KPI + features + trained forest shared by the
// §5.8 microbenchmarks.
type benchPipeline struct {
	dets   []detectors.Detector
	feats  *core.Features
	labels []bool
	model  *forest.Forest
	row    []float64
	values []float64
	ppw    int
}

func newBenchPipeline(b *testing.B, trees int) *benchPipeline {
	b.Helper()
	p := kpigen.SRT(kpigen.Small)
	d := kpigen.Generate(p, 1)
	dets, err := detectors.Registry(p.Interval)
	if err != nil {
		b.Fatal(err)
	}
	feats, err := core.Extract(d.Series, dets, core.ExtractConfig{})
	if err != nil {
		b.Fatal(err)
	}
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		b.Fatal(err)
	}
	trainHi := core.InitWeeks * ppw
	model := forest.Train(feats.Imputed(0, trainHi), d.Labels[:trainHi],
		forest.Config{Trees: trees, Seed: 1})
	return &benchPipeline{
		dets:   dets,
		feats:  feats,
		labels: d.Labels,
		model:  model,
		row:    make([]float64, len(dets)),
		values: d.Series.Values,
		ppw:    ppw,
	}
}

// BenchmarkDetectionLag measures the per-point feature-extraction cost of
// all 133 configurations — the dominant term of the paper's 0.15 s/point
// detection lag (§5.8).
func BenchmarkDetectionLag(b *testing.B) {
	p := newBenchPipeline(b, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := p.values[i%len(p.values)]
		for j, d := range p.dets {
			sev, ready := d.Step(v)
			if ready {
				p.row[j] = sev
			} else {
				p.row[j] = 0
			}
		}
	}
}

// BenchmarkClassification measures the per-point classification cost of a
// trained forest — the paper reports < 0.0001 s/point (§5.8).
func BenchmarkClassification(b *testing.B) {
	p := newBenchPipeline(b, 60)
	cols := p.feats.Imputed(0, p.feats.NumPoints())
	for j := range cols {
		p.row[j] = cols[j][len(cols[j])-1]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.model.Prob(p.row)
	}
}

// BenchmarkTrainingTime measures one incremental-retraining round on 8
// weeks of data — the paper reports < 5 minutes (§5.8).
func BenchmarkTrainingTime(b *testing.B) {
	p := newBenchPipeline(b, 60)
	trainHi := core.InitWeeks * p.ppw
	cols := p.feats.Imputed(0, trainHi)
	labels := p.labels[:trainHi]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forest.Train(cols, labels, forest.Config{Trees: 60, Seed: int64(i)})
	}
}

// BenchmarkAblationForest sweeps the ensemble size: accuracy-per-cost of the
// forest's main knob.
func BenchmarkAblationForest(b *testing.B) {
	for _, trees := range []int{10, 30, 60, 120} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			p := newBenchPipeline(b, 15)
			trainHi := core.InitWeeks * p.ppw
			cols := p.feats.Imputed(0, trainHi)
			labels := p.labels[:trainHi]
			test := p.feats.Imputed(trainHi, p.feats.NumPoints())
			testLabels := p.labels[trainHi:]
			b.ResetTimer()
			var auc float64
			for i := 0; i < b.N; i++ {
				m := forest.Train(cols, labels, forest.Config{Trees: trees, Seed: 1})
				auc = stats.AUCPR(m.ProbAll(test), testLabels)
			}
			b.ReportMetric(auc, "aucpr")
		})
	}
}

// BenchmarkAblationBinnedSplits sweeps the split granularity (quantile bin
// count) of the CART trees: coarse bins are faster, fine bins are exact.
func BenchmarkAblationBinnedSplits(b *testing.B) {
	for _, bins := range []int{8, 32, 256} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			p := newBenchPipeline(b, 15)
			trainHi := core.InitWeeks * p.ppw
			cols := p.feats.Imputed(0, trainHi)
			labels := p.labels[:trainHi]
			test := p.feats.Imputed(trainHi, p.feats.NumPoints())
			testLabels := p.labels[trainHi:]
			b.ResetTimer()
			var auc float64
			for i := 0; i < b.N; i++ {
				m := forest.Train(cols, labels, forest.Config{Trees: 30, MaxBins: bins, Seed: 1})
				auc = stats.AUCPR(m.ProbAll(test), testLabels)
			}
			b.ReportMetric(auc, "aucpr")
		})
	}
}

// BenchmarkEWMAvsCV contrasts the cost of the two cThld prediction methods:
// EWMA is arithmetic; cross-validation retrains the forest per fold (§4.5.2).
func BenchmarkEWMAvsCV(b *testing.B) {
	b.Run("ewma", func(b *testing.B) {
		pred := core.NewCThldPredictor(0.8)
		pred.Seed(0.5)
		for i := 0; i < b.N; i++ {
			pred.Observe(0.4)
			_ = pred.Predict()
		}
	})
	b.Run("cv5", func(b *testing.B) {
		p := newBenchPipeline(b, 8)
		trainHi := core.InitWeeks * p.ppw
		cols := p.feats.Imputed(0, trainHi)
		labels := p.labels[:trainHi]
		pref := stats.Preference{Recall: 0.66, Precision: 0.66}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.CrossValidateCThld(cols, labels, 5, 1000, forest.Config{Trees: 8, Seed: 1}, pref)
		}
	})
}
