package opprentice

import (
	"testing"
	"time"

	"opprentice/internal/detectors"
	"opprentice/internal/experiments"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

func TestDetectorsBuilds133(t *testing.T) {
	ds, err := Detectors(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != detectors.NumConfigurations {
		t.Fatalf("got %d configurations, want %d", len(ds), detectors.NumConfigurations)
	}
}

func TestSyntheticKPINames(t *testing.T) {
	for _, name := range []string{"pv", "sr", "srt"} {
		s, labels, err := SyntheticKPI(name, kpigen.Small, 1)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() == 0 || len(labels) != s.Len() {
			t.Errorf("%s: bad shapes", name)
		}
	}
	if _, _, err := SyntheticKPI("nope", kpigen.Small, 1); err == nil {
		t.Error("want error for unknown KPI")
	}
}

func TestExperimentsRegistryExposed(t *testing.T) {
	ids := Experiments()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments exposed", len(ids))
	}
	if _, err := RunExperiment("definitely-not-an-id", experiments.Options{Scale: kpigen.Small, Trees: 8}); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestFacadePipeline(t *testing.T) {
	s, labels, err := SyntheticKPI("srt", kpigen.Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Detectors(s.Interval)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Extract(s, ds)
	if err != nil {
		t.Fatal(err)
	}
	ppw, err := s.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(f, labels, ppw, Config{
		Forest:       forest.Config{Trees: 10, Seed: 1},
		SkipWeeklyCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) == 0 {
		t.Fatal("no detection weeks")
	}
}

func TestNewSeriesAndErrors(t *testing.T) {
	s := NewSeries("x", time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC), time.Minute)
	s.Append(1)
	if s.Len() != 1 || s.Interval != time.Minute {
		t.Errorf("NewSeries produced %+v", s)
	}
	if got := (&UnknownExperimentError{ID: "Z9"}).Error(); got != "opprentice: unknown experiment Z9" {
		t.Errorf("experiment error = %q", got)
	}
	if got := (&UnknownKPIError{Name: "zz"}).Error(); got == "" {
		t.Error("empty KPI error text")
	}
}

func TestRunExperimentHappyPath(t *testing.T) {
	tabs, err := RunExperiment("T3", experiments.Options{Scale: kpigen.Small})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || tabs[0].ID != "T3" {
		t.Errorf("tables = %+v", tabs)
	}
}
