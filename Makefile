# Opprentice reproduction — convenience targets.
GO ?= go

.PHONY: all build test vet race engine-race faults bench bench-json bench-check eval eval-html fuzz clean

all: build vet test engine-race bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Concurrency suite for the serving stack: the engine's ingest/retrain/swap
# protocol and the HTTP adapter, under the race detector, twice (-count=2
# also defeats test caching so the schedule varies between runs).
engine-race:
	$(GO) test -race -count=2 ./internal/engine/ ./internal/service/

# Fault-injection suite only (panicking detectors/notifiers, WAL corruption,
# retry/shutdown behaviour) — every such test is named TestFault*.
faults:
	$(GO) test -run TestFault -v ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the retrain + flattened-forest benchmarks and record them as JSON
# (BENCH_retrain.json), then the warm-vs-cold restart benchmark
# (BENCH_restore.json). The fixed -benchtime keeps the runs short while
# giving stable ratios.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkRetrainColdVsIncremental|BenchmarkForestProbFlat$$' \
		-benchmem -benchtime 20x ./internal/core/ ./internal/ml/forest/ | tee bench_retrain.txt
	$(GO) run ./cmd/benchjson -in bench_retrain.txt -out BENCH_retrain.json
	$(GO) test -run '^$$' -bench 'BenchmarkRestoreWarmVsCold$$' \
		-benchtime 2x ./internal/engine/ | tee bench_restore.txt
	$(GO) run ./cmd/benchjson -in bench_restore.txt -out BENCH_restore.json

# Regression gates (machine-independent RATIOS, not absolute ns/op): the
# cold/incremental retrain speedup must stay within 10% of the committed
# baseline and above the absolute 5x floor, forest.Prob must stay
# allocation-free, and the model registry's warm restart must stay >= 3x
# faster than a cold restart.
bench-check: bench-json
	$(GO) run ./cmd/benchjson -in bench_retrain.txt -check BENCH_baseline.json
	$(GO) run ./cmd/benchjson -in bench_restore.txt -check BENCH_baseline.json

# Regenerate every paper table/figure (writes results_medium.txt + HTML).
eval:
	$(GO) run ./cmd/evalbench -run all -scale medium -o results_medium.txt -html results_medium.html

fuzz:
	$(GO) test -fuzz=FuzzPRCurve -fuzztime=30s ./internal/stats/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/timeseries/
	$(GO) test -fuzz=FuzzParseManifest -fuzztime=30s ./internal/registry/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt bench_retrain.txt bench_restore.txt
