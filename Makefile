# Opprentice reproduction — convenience targets.
GO ?= go

.PHONY: all build test vet race engine-race faults bench bench-json bench-check eval eval-html fuzz clean

all: build vet test engine-race bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Concurrency suite for the serving stack: the engine's ingest/retrain/swap
# protocol and the HTTP adapter, under the race detector, twice (-count=2
# also defeats test caching so the schedule varies between runs).
engine-race:
	$(GO) test -race -count=2 ./internal/engine/ ./internal/service/

# Fault-injection suite only (panicking detectors/notifiers, WAL corruption,
# retry/shutdown behaviour) — every such test is named TestFault*.
faults:
	$(GO) test -run TestFault -v ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the retrain + flattened-forest benchmarks and record them as JSON
# (BENCH_retrain.json). The fixed -benchtime keeps the run short while giving
# a stable cold/incremental ratio.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkRetrainColdVsIncremental|BenchmarkForestProbFlat$$' \
		-benchmem -benchtime 20x ./internal/core/ ./internal/ml/forest/ | tee bench_retrain.txt
	$(GO) run ./cmd/benchjson -in bench_retrain.txt -out BENCH_retrain.json

# Regression gate: the cold/incremental retrain speedup RATIO (machine-
# independent) must stay within 10% of the committed baseline and above the
# absolute 5x floor, and forest.Prob must stay allocation-free.
bench-check: bench-json
	$(GO) run ./cmd/benchjson -in bench_retrain.txt -check BENCH_baseline.json

# Regenerate every paper table/figure (writes results_medium.txt + HTML).
eval:
	$(GO) run ./cmd/evalbench -run all -scale medium -o results_medium.txt -html results_medium.html

fuzz:
	$(GO) test -fuzz=FuzzPRCurve -fuzztime=30s ./internal/stats/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/timeseries/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt bench_retrain.txt
