# Opprentice reproduction — convenience targets.
GO ?= go

.PHONY: all build test vet race engine-race faults sim sim-race sim-long cover bench bench-json bench-check eval eval-html fuzz staticcheck govulncheck clean

all: build vet staticcheck test engine-race sim cover bench-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Concurrency suite for the serving stack: the engine's ingest/retrain/swap
# protocol and the HTTP adapter, under the race detector, twice (-count=2
# also defeats test caching so the schedule varies between runs).
engine-race:
	$(GO) test -race -count=2 ./internal/engine/ ./internal/service/

# Fault-injection suite only (panicking detectors/notifiers, WAL corruption,
# retry/shutdown behaviour) — every such test is named TestFault*.
faults:
	$(GO) test -run TestFault -v ./...

# Deterministic end-to-end simulation: the full engine (WAL + model registry +
# alert pipeline + async retrain/publish) driven through seeded scenarios of
# traffic, noisy labels, weekly retrains, crashes, torn artifacts, WAL
# corruption and rollbacks, with invariants checked after every step. The
# matrix covers 8 fixed seeds; a failure prints a single-seed repro command.
sim:
	$(GO) test -count=1 -run 'TestSim' ./internal/simtest/

sim-race:
	$(GO) test -race -count=1 -run 'TestSim' ./internal/simtest/

# Longer scenarios (more weeks, more faults) on the same seed matrix, plus
# the extra regime-change seeds. The custom flag must come after the package
# path, or go test falls back to testing the root package.
sim-long:
	$(GO) test -count=1 -run 'TestSim' ./internal/simtest/ -sim.long

# Per-package coverage floor for the layers the simulation is meant to keep
# honest. The floor is deliberately below current numbers (core ~85%,
# engine ~75%, registry ~85%) — it catches coverage collapses, not drift.
COVER_FLOOR ?= 70.0
COVER_PKGS  ?= internal/core internal/engine internal/registry internal/active internal/stats internal/ml/forest internal/tsdb internal/kpigen

cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -count=1 -cover ./$$pkg/ | tail -n 1); \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$pkg: $$out"; exit 1; fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f+0) }' || \
			{ echo "cover: FAIL — $$pkg at $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; }; \
	done

bench:
	$(GO) test -bench=. -benchmem ./...

# Run the retrain + flattened-forest benchmarks and record them as JSON
# (BENCH_retrain.json), then the warm-vs-cold restart benchmark
# (BENCH_restore.json), then the segmented-WAL ingest benchmark
# (BENCH_ingest.json), then the open-loop serving harness
# (BENCH_serve.json — cmd/loadgen self-hosts an in-process opprenticed and
# scrapes it at the operating point documented in EXPERIMENTS.md). The
# fixed -benchtime keeps the runs short while giving stable ratios.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkRetrainColdVsIncremental|BenchmarkForestProbFlat$$' \
		-benchmem -benchtime 20x ./internal/core/ ./internal/ml/forest/ | tee bench_retrain.txt
	$(GO) run ./cmd/benchjson -in bench_retrain.txt -out BENCH_retrain.json
	$(GO) test -run '^$$' -bench 'BenchmarkRestoreWarmVsCold$$' \
		-benchtime 2x ./internal/engine/ | tee bench_restore.txt
	$(GO) run ./cmd/benchjson -in bench_restore.txt -out BENCH_restore.json
	$(GO) test -run '^$$' -bench 'BenchmarkIngestWAL$$' \
		-benchmem -benchtime 2s . | tee bench_ingest.txt
	$(GO) run ./cmd/benchjson -in bench_ingest.txt -out BENCH_ingest.json
	$(GO) run ./cmd/loadgen | tee bench_serve.txt
	$(GO) run ./cmd/benchjson -in bench_serve.txt -out BENCH_serve.json

# Regression gates (machine-independent RATIOS, not absolute ns/op): the
# cold/incremental retrain speedup must stay within 10% of the committed
# baseline and above the absolute 5x floor, forest.Prob must stay
# allocation-free, and the model registry's warm restart must stay >= 3x
# faster than a cold restart. The ingest run must hold >= 1M pts/s of bulk
# WAL throughput and a >= 5x bytes-per-point win over the legacy JSON-lines
# encoding. The serving SLO gate is absolute: at loadgen's default
# operating point (4 trained series scraped every 50ms, single-core), the
# open-loop p99 verdict latency must stay under 20ms and streaming trained
# scoring above 8k pts/s — both ~4x off the measured numbers in
# EXPERIMENTS.md, and far inside the one-data-interval SLO (60s for
# minute-granularity KPIs).
bench-check: bench-json
	$(GO) run ./cmd/benchjson -in bench_retrain.txt -check BENCH_baseline.json
	$(GO) run ./cmd/benchjson -in bench_restore.txt -check BENCH_baseline.json
	$(GO) run ./cmd/benchjson -in bench_ingest.txt -check BENCH_baseline.json
	$(GO) run ./cmd/benchjson -in bench_serve.txt -check BENCH_baseline.json

# Regenerate every paper table/figure (writes the checked-in report under
# internal/experiments/).
eval:
	$(GO) run ./cmd/evalbench -run all -scale medium -o internal/experiments/results_medium.txt -html internal/experiments/results_medium.html

# Per-target fuzzing budget; CI shortens it (FUZZTIME=10s) to keep the job
# inside its time box while still exercising the fuzz harnesses.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz=FuzzPRCurve -fuzztime=$(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/timeseries/
	$(GO) test -fuzz=FuzzParseManifest -fuzztime=$(FUZZTIME) ./internal/registry/
	$(GO) test -fuzz=FuzzHandlePoints -fuzztime=$(FUZZTIME) ./internal/service/
	$(GO) test -fuzz=FuzzSegmentDecode -fuzztime=$(FUZZTIME) ./internal/tsdb/

# Static analysis beyond vet. Both tools are optional: the targets no-op with
# a notice when the binary is not installed, so `make all` works in minimal
# containers while CI (which installs them) gets the full check.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck: not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt bench_retrain.txt bench_restore.txt bench_ingest.txt bench_serve.txt
