package opprentice

// Ingest-path benchmarks for the transport-agnostic engine, mirroring the
// HTTP-level BenchmarkHandlePoints in internal/service so the adapter's
// overhead (JSON, routing, pooling) is separable from the engine's own cost.
// Run with:
//
//	go test -bench=BenchmarkEngineAppend -benchmem
import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"testing"
	"time"

	"opprentice/internal/engine"
	"opprentice/internal/kpigen"
)

const benchBatch = 256

var benchStart = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)

// benchEngine builds an engine with nSeries trained series and returns it
// plus a pool of values to stream.
func benchEngine(b *testing.B, nSeries int) (*engine.Engine, []float64) {
	b.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 91)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		b.Fatal(err)
	}
	boot := 8 * ppw
	pts := make([]engine.Point, boot)
	for i := range pts {
		pts[i] = engine.Point{Value: d.Series.Values[i]}
	}
	var windows []engine.Window
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, engine.Window{Start: w.Start, End: w.End, Anomalous: true})
		}
	}

	e := engine.New(engine.Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	b.Cleanup(e.Close)
	for i := 0; i < nSeries; i++ {
		name := fmt.Sprintf("pv-%03d", i)
		if err := e.Create(name, engine.SeriesConfig{IntervalSeconds: 3600, Start: benchStart, Trees: 10}); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Append(context.Background(), name, pts, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Label(context.Background(), name, windows); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Train(context.Background(), name); err != nil {
			b.Fatal(err)
		}
	}
	return e, d.Series.Values[boot:]
}

// BenchmarkEngineAppend measures the in-process ingest hot path: one
// Append call per op, batch of 256 points, trained monitor stepping every
// point. The serial case is one series; the parallel case spreads RunParallel
// goroutines across 64 series so shard and series locks are exercised the way
// a busy multi-tenant daemon would.
func BenchmarkEngineAppend(b *testing.B) {
	// Untrained series: pure append + WALless bookkeeping, no Monitor.Step.
	// Directly comparable to internal/service's BenchmarkHandlePoints (also
	// untrained) to isolate the HTTP adapter's decode/encode overhead.
	b.Run("serial-1series-untrained", func(b *testing.B) {
		e := engine.New(engine.Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
		b.Cleanup(e.Close)
		if err := e.Create("pv", engine.SeriesConfig{IntervalSeconds: 3600, Start: benchStart}); err != nil {
			b.Fatal(err)
		}
		pts := make([]engine.Point, benchBatch)
		for i := range pts {
			pts[i] = engine.Point{Value: float64(i % 97)}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("serial-1series", func(b *testing.B) {
		e, vals := benchEngine(b, 1)
		pts := make([]engine.Point, benchBatch)
		for i := range pts {
			pts[i] = engine.Point{Value: vals[i%len(vals)]}
		}
		var vbuf []engine.Verdict
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Append(context.Background(), "pv-000", pts, vbuf)
			if err != nil {
				b.Fatal(err)
			}
			vbuf = res.Verdicts
		}
	})

	b.Run("parallel-64series", func(b *testing.B) {
		const nSeries = 64
		e, vals := benchEngine(b, nSeries)
		names := make([]string, nSeries)
		for i := range names {
			names[i] = fmt.Sprintf("pv-%03d", i)
		}
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			name := names[int(next.Add(1)-1)%nSeries]
			pts := make([]engine.Point, benchBatch)
			for i := range pts {
				pts[i] = engine.Point{Value: vals[i%len(vals)]}
			}
			var vbuf []engine.Verdict
			for pb.Next() {
				res, err := e.Append(context.Background(), name, pts, vbuf)
				if err != nil {
					b.Fatal(err)
				}
				vbuf = res.Verdicts
			}
		})
	})
}
