// Serviceclient: Opprentice as a network service. Starts the HTTP detection
// service in-process, then drives the full operational loop through the
// typed client: create a series, bulk-ingest labeled history, train, stream
// live points, and read back the alarms — exactly what a monitoring agent
// fleet would do against cmd/opprenticed.
package main

import (
	"context"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/service"
)

func main() {
	// In-process server on a loopback port (production runs cmd/opprenticed).
	srv := service.NewServer(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn})))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	client := service.NewClient("http://"+ln.Addr().String(), nil)
	ctx := context.Background()

	// 1. Create a monitored series for an hourly latency KPI.
	p := kpigen.SRT(kpigen.Small)
	d := kpigen.Generate(p, 3)
	if err := client.Create(ctx, "srt", service.CreateRequest{
		IntervalSeconds: int(p.Interval / time.Second),
		Start:           d.Series.Start,
		Trees:           30,
	}); err != nil {
		log.Fatal(err)
	}

	// 2. Bulk-ingest 10 weeks of history and its labels.
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		log.Fatal(err)
	}
	boot := 10 * ppw
	points := make([]service.Point, boot)
	for i := 0; i < boot; i++ {
		points[i] = service.Point{Value: d.Series.Values[i]}
	}
	if _, err := client.Append(ctx, "srt", points); err != nil {
		log.Fatal(err)
	}
	var windows []service.LabelWindow
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, service.LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if err := client.Label(ctx, "srt", windows); err != nil {
		log.Fatal(err)
	}

	// 3. Train.
	cthld, err := client.Train(ctx, "srt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d points with %d labeled windows; cThld=%.3f\n", boot, len(windows), cthld)

	// 4. Stream the rest of the data live and count verdicts.
	var anomalous int
	for i := boot; i < d.Series.Len(); i++ {
		resp, err := client.Append(ctx, "srt", []service.Point{{Value: d.Series.Values[i]}})
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range resp.Verdicts {
			if v.Anomalous {
				anomalous++
			}
		}
	}
	fmt.Printf("streamed %d live points, %d flagged anomalous\n", d.Series.Len()-boot, anomalous)

	// 5. Read the alarm log back.
	alarms, err := client.Alarms(ctx, "srt", time.Time{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d alarms retained; first: %s\n", len(alarms),
		first(alarms).Time.Format(time.RFC3339))
}

func first(alarms []service.Alarm) service.Alarm {
	if len(alarms) == 0 {
		return service.Alarm{}
	}
	return alarms[0]
}
