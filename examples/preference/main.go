// Preference: the same classifier, three different operators. A busy team
// wants few false alarms (precision-sensitive); a revenue KPI owner wants
// nothing missed (recall-sensitive). Opprentice moves only the cThld — the
// PC-Score picks a different operating point on the same PR curve for each
// stated preference (§4.5.1).
package main

import (
	"fmt"
	"log"

	"opprentice"

	"opprentice/internal/core"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

func main() {
	series, labels, err := opprentice.SyntheticKPI("pv", kpigen.Small, 5)
	if err != nil {
		log.Fatal(err)
	}
	dets, err := opprentice.Detectors(series.Interval)
	if err != nil {
		log.Fatal(err)
	}
	feats, err := opprentice.Extract(series, dets)
	if err != nil {
		log.Fatal(err)
	}
	ppw, err := series.PointsPerWeek()
	if err != nil {
		log.Fatal(err)
	}
	// One classifier, trained once on the first 8 weeks.
	trainHi := core.InitWeeks * ppw
	model := forest.Train(feats.Imputed(0, trainHi), labels[:trainHi],
		forest.Config{Trees: 30, Seed: 5})
	scores := model.ProbAll(feats.Imputed(trainHi, feats.NumPoints()))
	truth := []bool(labels[trainHi:])

	prefs := []struct {
		who  string
		pref opprentice.Preference
	}{
		{"moderate operators", opprentice.Preference{Recall: 0.66, Precision: 0.66}},
		{"busy operators (hate false alarms)", opprentice.Preference{Recall: 0.6, Precision: 0.8}},
		{"revenue KPI owners (miss nothing)", opprentice.Preference{Recall: 0.8, Precision: 0.6}},
	}
	fmt.Println("one classifier, three preferences — only the cThld moves:")
	for _, p := range prefs {
		pt, ok := stats.BestByPCScore(stats.PRCurve(scores, truth), p.pref)
		fmt.Printf("%-38s want (r>=%.2f, p>=%.2f) -> cThld=%.3f gives (r=%.2f, p=%.2f) satisfied=%v\n",
			p.who, p.pref.Recall, p.pref.Precision, pt.Threshold, pt.Recall, pt.Precision, ok)
	}
}
