// Quickstart: train Opprentice on a labeled KPI and run the weekly
// detection loop — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"opprentice"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

func main() {
	// 1. Get labeled KPI data. Here: the synthetic page-view KPI with its
	// ground-truth labels; in production this comes from the labeling tool.
	series, labels, err := opprentice.SyntheticKPI("pv", kpigen.Small, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KPI %q: %d points at %v interval, %.1f%% anomalous\n",
		series.Name, series.Len(), series.Interval, 100*labels.Fraction())

	// 2. Build the 133 detector configurations of Table 3 and extract the
	// severity features.
	dets, err := opprentice.Detectors(series.Interval)
	if err != nil {
		log.Fatal(err)
	}
	feats, err := opprentice.Extract(series, dets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d features per point\n", len(feats.Cols))

	// 3. Run the weekly loop: train on history, predict a cThld, detect.
	ppw, err := series.PointsPerWeek()
	if err != nil {
		log.Fatal(err)
	}
	res, err := opprentice.Run(feats, labels, ppw, opprentice.Config{
		Preference:   opprentice.Preference{Recall: 0.66, Precision: 0.66},
		Forest:       forest.Config{Trees: 30, Seed: 1},
		SkipWeeklyCV: true, // EWMA prediction only; CV baseline is slow
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range res.Weeks {
		fmt.Printf("week %2d: cThld=%.3f recall=%.2f precision=%.2f\n",
			w.Week+1, w.EWMACThld, w.EWMA.Recall(), w.EWMA.Precision())
	}
}
