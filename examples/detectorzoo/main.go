// Detectorzoo: why Opprentice exists. Ranks every basic detector
// configuration by AUCPR on two different KPIs and shows that (a) the best
// basic detector changes with the KPI — so manual selection cannot be done
// once and for all — and (b) the random forest matches or beats the best
// configuration on both without any manual tuning.
package main

import (
	"fmt"
	"log"
	"sort"

	"opprentice"

	"opprentice/internal/core"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

func main() {
	for _, name := range []string{"pv", "sr"} {
		if err := rank(name); err != nil {
			log.Fatal(err)
		}
	}
}

func rank(name string) error {
	series, labels, err := opprentice.SyntheticKPI(name, kpigen.Small, 11)
	if err != nil {
		return err
	}
	dets, err := opprentice.Detectors(series.Interval)
	if err != nil {
		return err
	}
	feats, err := opprentice.Extract(series, dets)
	if err != nil {
		return err
	}
	ppw, err := series.PointsPerWeek()
	if err != nil {
		return err
	}
	testLo := core.InitWeeks * ppw
	testLabels := labels[testLo:]

	type entry struct {
		name string
		auc  float64
	}
	var entries []entry
	for j, cfgName := range feats.Names {
		auc := stats.AUCPR(feats.Cols[j][testLo:], testLabels)
		entries = append(entries, entry{cfgName, auc})
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].auc > entries[b].auc })

	// The forest, trained on the first 8 weeks only (no tuning at all).
	model := forest.Train(feats.Imputed(0, testLo), labels[:testLo],
		forest.Config{Trees: 30, Seed: 11})
	rfAUC := stats.AUCPR(model.ProbAll(feats.Imputed(testLo, feats.NumPoints())), testLabels)

	fmt.Printf("=== KPI %s ===\n", name)
	fmt.Printf("%-34s AUCPR\n", "top-5 basic configurations")
	for _, e := range entries[:5] {
		fmt.Printf("%-34s %.3f\n", e.name, e.auc)
	}
	fmt.Printf("%-34s %.3f\n", "worst configuration ("+entries[len(entries)-1].name+")", entries[len(entries)-1].auc)
	fmt.Printf("%-34s %.3f\n\n", "random forest (no tuning)", rfAUC)
	return nil
}
