// Streaming: an online monitor over a simulated live KPI feed — the
// deployment shape of Fig. 3(b). The monitor is trained on labeled history,
// then classifies each arriving point within the data interval, and is
// retrained "weekly" as new labels arrive.
package main

import (
	"fmt"
	"log"
	"time"

	"opprentice"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

func main() {
	// Labeled history: 12 small-scale weeks of the page-view KPI.
	history, labels, err := opprentice.SyntheticKPI("pv", kpigen.Small, 7)
	if err != nil {
		log.Fatal(err)
	}
	dets, err := opprentice.Detectors(history.Interval)
	if err != nil {
		log.Fatal(err)
	}
	mon, err := opprentice.NewMonitor(history, labels, dets, opprentice.MonitorConfig{
		Preference:    opprentice.Preference{Recall: 0.66, Precision: 0.66},
		Forest:        forest.Config{Trees: 30, Seed: 7},
		SkipInitialCV: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor trained on %d points; cThld=%.3f\n", history.Len(), mon.CThld())

	// Simulated live feed: a fresh generation of the same KPI profile; its
	// ground-truth labels tell us how the monitor is doing.
	feed, feedTruth, err := opprentice.SyntheticKPI("pv", kpigen.Small, 8)
	if err != nil {
		log.Fatal(err)
	}
	var tp, fp, fn, alarms int
	n := 2016 // stream two weeks
	start := time.Now()
	for i := 0; i < n; i++ {
		v := feed.Values[i]
		verdict := mon.Step(v)
		switch {
		case verdict.Anomalous && feedTruth[i]:
			tp++
		case verdict.Anomalous && !feedTruth[i]:
			fp++
		case !verdict.Anomalous && feedTruth[i]:
			fn++
		}
		if verdict.Anomalous {
			alarms++
			if alarms <= 5 {
				fmt.Printf("ALARM at %s: value=%.0f probability=%.2f\n",
					feed.TimeAt(i).Format(time.RFC3339), v, verdict.Probability)
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("... %d alarms total\n", alarms)
	fmt.Printf("streamed %d points in %v (%.2f µs/point — interval is %v)\n",
		n, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/float64(n), feed.Interval)
	recall := float64(tp) / float64(max(tp+fn, 1))
	precision := float64(tp) / float64(max(tp+fp, 1))
	fmt.Printf("against the feed's ground truth: recall=%.2f precision=%.2f\n", recall, precision)
}
