package opprentice_test

import (
	"fmt"
	"time"

	"opprentice"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

// ExampleDetectors shows the Table-3 registry: 14 basic detectors sampled
// into 133 configurations, each a streaming severity extractor.
func ExampleDetectors() {
	dets, err := opprentice.Detectors(time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(dets), "configurations")
	fmt.Println("first:", dets[0].Name())
	fmt.Println("last:", dets[len(dets)-1].Name())
	// Output:
	// 133 configurations
	// first: simple_threshold
	// last: arima(auto)
}

// ExampleNewMonitor trains an online monitor on labeled history and streams
// a blatant anomaly through it.
func ExampleNewMonitor() {
	history, labels, err := opprentice.SyntheticKPI("pv", kpigen.Small, 1)
	if err != nil {
		panic(err)
	}
	dets, err := opprentice.Detectors(history.Interval)
	if err != nil {
		panic(err)
	}
	mon, err := opprentice.NewMonitor(history, labels, dets, opprentice.MonitorConfig{
		Forest:        forest.Config{Trees: 20, Seed: 1},
		SkipInitialCV: true, // fast start for the example
	})
	if err != nil {
		panic(err)
	}
	// An 85 % drop from the last observed level must alarm.
	drop := history.Values[history.Len()-1] * 0.15
	verdict := mon.Step(drop)
	fmt.Println("anomalous:", verdict.Anomalous)
	// Output:
	// anomalous: true
}

// ExampleRun executes the paper's weekly loop offline: incremental
// retraining, oracle cThlds, and EWMA-predicted cThlds per week.
func ExampleRun() {
	series, labels, err := opprentice.SyntheticKPI("srt", kpigen.Small, 1)
	if err != nil {
		panic(err)
	}
	dets, err := opprentice.Detectors(series.Interval)
	if err != nil {
		panic(err)
	}
	feats, err := opprentice.Extract(series, dets)
	if err != nil {
		panic(err)
	}
	ppw, err := series.PointsPerWeek()
	if err != nil {
		panic(err)
	}
	res, err := opprentice.Run(feats, labels, ppw, opprentice.Config{
		Forest:       forest.Config{Trees: 20, Seed: 1},
		SkipWeeklyCV: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("detection weeks:", len(res.Weeks))
	fmt.Println("first detection week:", res.Weeks[0].Week+1)
	// Output:
	// detection weeks: 4
	// first detection week: 9
}
